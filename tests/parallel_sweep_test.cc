// Tests for block-parallel bound sweeps (FlosOptions::sweep_threads):
// parallel runs must certify the same top-k as serial runs for every
// measure and both sweep backends, the certified result must match the
// exact whole-graph ground truth, and repeated parallel runs must be
// bit-deterministic (fixed partition + immutable snapshot — correctness
// must not depend on a lucky interleaving). The whole suite runs under
// TSAN in CI, which turns any cross-chunk write race into a failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "core/sweep_kernel.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "measures/exact.h"
#include "measures/measure.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

constexpr Measure kAllMeasures[] = {Measure::kPhp, Measure::kEi,
                                    Measure::kDht, Measure::kTht,
                                    Measure::kRwr};

FlosOptions SweepOptions(Measure m, SweepBackendKind backend, int threads) {
  FlosOptions o;
  o.measure = m;
  o.sweep_backend = backend;
  o.sweep_threads = threads;
  // Force the parallel path even on small visited sets; production keeps
  // the adaptive threshold, the test wants coverage.
  o.sweep_parallel_min_rows = 1;
  return o;
}

std::vector<NodeId> SortedNodes(const FlosResult& r) {
  std::vector<NodeId> nodes;
  nodes.reserve(r.topk.size());
  for (const ScoredNode& s : r.topk) nodes.push_back(s.node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

// Serial and 4-thread parallel runs over the same graph must both certify,
// return the same top-k node set, and rank correctly against the exact
// whole-graph solver. Score values may differ in the last ulps (the
// parallel sweep is block-Jacobi across chunks, a different — equally
// certified — iterate), so the comparison is set + ground-truth based.
void RunParitySuite(SweepBackendKind backend) {
  const Graph g = RandomConnectedGraph(600, 2400, 17);
  InMemoryAccessor serial_accessor(&g);
  InMemoryAccessor parallel_accessor(&g);
  FlosEngine serial_engine(&serial_accessor);
  FlosEngine parallel_engine(&parallel_accessor);
  const MeasureParams params;
  for (const NodeId q : {NodeId{5}, NodeId{321}}) {
    for (const Measure m : kAllMeasures) {
      SCOPED_TRACE(::testing::Message()
                   << "measure=" << static_cast<int>(m) << " query=" << q);
      const FlosResult serial =
          ValueOrDie(serial_engine.TopK(q, 10, SweepOptions(m, backend, 1)));
      const FlosResult parallel = ValueOrDie(
          parallel_engine.TopK(q, 10, SweepOptions(m, backend, 4)));
      ASSERT_TRUE(serial.stats.exact);
      ASSERT_TRUE(parallel.stats.exact)
          << "parallel sweeps must not lose certification";
      EXPECT_EQ(SortedNodes(serial), SortedNodes(parallel))
          << "serial and parallel certified top-k sets must agree";
      for (const ScoredNode& s : parallel.topk) {
        EXPECT_LE(s.lower, s.upper + 1e-12)
            << "certified interval inverted for node " << s.node;
      }
      const auto exact = ValueOrDie(ExactMeasure(g, q, m, params));
      std::vector<NodeId> nodes;
      for (const ScoredNode& s : parallel.topk) nodes.push_back(s.node);
      testing::ExpectTopKMatchesScores(nodes, exact, q, 10,
                                       MeasureDirection(m), 1e-6);
    }
  }
}

TEST(ParallelSweepTest, MatchesSerialAcrossMeasuresScalar) {
  RunParitySuite(SweepBackendKind::kScalar);
}

TEST(ParallelSweepTest, MatchesSerialAcrossMeasuresAvx2) {
  if (!Avx2SweepAvailable()) GTEST_SKIP() << "CPU lacks AVX2";
  RunParitySuite(SweepBackendKind::kAvx2);
}

// The certified lower/upper intervals of a parallel run must bracket the
// exact values for the measures returned in their native bound space
// (PHP; THT's intervals come from the same horizon DP the exact solver
// runs). EI/RWR intervals are scaled with a query-local estimate of the
// normalization constant, so only their ranking is checked above.
TEST(ParallelSweepTest, IntervalsBracketExactValues) {
  const Graph g = RandomConnectedGraph(400, 1600, 23);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  const NodeId q = 11;
  const FlosResult php = ValueOrDie(
      engine.TopK(q, 10, SweepOptions(Measure::kPhp, SweepBackendKind::kAuto,
                                      4)));
  ASSERT_TRUE(php.stats.exact);
  const auto exact_php = ValueOrDie(ExactPhp(g, q, 0.5));
  for (const ScoredNode& s : php.topk) {
    EXPECT_GE(exact_php[s.node], s.lower - 1e-7) << "node " << s.node;
    EXPECT_LE(exact_php[s.node], s.upper + 1e-7) << "node " << s.node;
  }
  const FlosResult tht = ValueOrDie(
      engine.TopK(q, 10, SweepOptions(Measure::kTht, SweepBackendKind::kAuto,
                                      4)));
  ASSERT_TRUE(tht.stats.exact);
  const auto exact_tht = ValueOrDie(ExactTht(g, q, 10));
  for (const ScoredNode& s : tht.topk) {
    EXPECT_GE(exact_tht[s.node], s.lower - 1e-7) << "node " << s.node;
    EXPECT_LE(exact_tht[s.node], s.upper + 1e-7) << "node " << s.node;
  }
}

// Fixed partition + immutable snapshot makes the parallel sweep
// deterministic: two runs of the same query on the same engine must agree
// bit for bit, not merely to tolerance.
TEST(ParallelSweepTest, ParallelRunsAreBitDeterministic) {
  const Graph g = RandomConnectedGraph(500, 2000, 31);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  for (const Measure m : kAllMeasures) {
    SCOPED_TRACE(::testing::Message() << "measure=" << static_cast<int>(m));
    const FlosOptions o = SweepOptions(m, SweepBackendKind::kAuto, 4);
    const FlosResult a = ValueOrDie(engine.TopK(9, 10, o));
    const FlosResult b = ValueOrDie(engine.TopK(9, 10, o));
    ASSERT_EQ(a.topk.size(), b.topk.size());
    for (size_t i = 0; i < a.topk.size(); ++i) {
      EXPECT_EQ(a.topk[i].node, b.topk[i].node);
      EXPECT_EQ(a.topk[i].score, b.topk[i].score);
      EXPECT_EQ(a.topk[i].lower, b.topk[i].lower);
      EXPECT_EQ(a.topk[i].upper, b.topk[i].upper);
    }
    EXPECT_EQ(a.stats.inner_iterations, b.stats.inner_iterations);
    EXPECT_EQ(a.stats.visited_nodes, b.stats.visited_nodes);
  }
}

// Multi-source queries go through the same solve path; parallel sweeps
// must preserve their certification too.
TEST(ParallelSweepTest, MultiSourceParallelMatchesSerial) {
  const Graph g = RandomConnectedGraph(500, 2000, 41);
  InMemoryAccessor serial_accessor(&g);
  InMemoryAccessor parallel_accessor(&g);
  FlosEngine serial_engine(&serial_accessor);
  FlosEngine parallel_engine(&parallel_accessor);
  const std::vector<NodeId> sources = {3, 77, 240};
  for (const Measure m : {Measure::kPhp, Measure::kDht, Measure::kTht}) {
    SCOPED_TRACE(::testing::Message() << "measure=" << static_cast<int>(m));
    const FlosResult serial = ValueOrDie(serial_engine.TopKSet(
        sources, 8, SweepOptions(m, SweepBackendKind::kAuto, 1)));
    const FlosResult parallel = ValueOrDie(parallel_engine.TopKSet(
        sources, 8, SweepOptions(m, SweepBackendKind::kAuto, 4)));
    ASSERT_TRUE(serial.stats.exact);
    ASSERT_TRUE(parallel.stats.exact);
    EXPECT_EQ(SortedNodes(serial), SortedNodes(parallel));
  }
}

// With the production threshold left at its default, a small query must
// still work (the engine quietly stays serial below the row floor) and an
// engine must survive thread-count changes between queries (the pool is
// lazily recreated).
TEST(ParallelSweepTest, AdaptiveThresholdAndThreadCountChanges) {
  const Graph g = RandomConnectedGraph(300, 1200, 53);
  InMemoryAccessor accessor(&g);
  FlosEngine engine(&accessor);
  FlosOptions defaults;  // sweep_parallel_min_rows = 4096 stays serial here
  defaults.sweep_threads = 4;
  const FlosResult small = ValueOrDie(engine.TopK(7, 10, defaults));
  EXPECT_TRUE(small.stats.exact);
  for (const int threads : {1, 2, 8, 1, 4}) {
    FlosOptions o = SweepOptions(Measure::kPhp, SweepBackendKind::kAuto,
                                 threads);
    const FlosResult r = ValueOrDie(engine.TopK(7, 10, o));
    EXPECT_TRUE(r.stats.exact) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace flos
