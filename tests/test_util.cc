#include "tests/test_util.h"

#include <algorithm>

#include "measures/exact.h"

namespace flos {
namespace testing {

Graph PaperExampleGraph() {
  GraphBuilder builder;
  // 0-based: paper node i is test node i-1.
  const std::pair<int, int> edges[] = {{1, 2}, {1, 3}, {2, 4}, {3, 4},
                                       {3, 5}, {4, 6}, {4, 7}, {5, 8},
                                       {6, 8}, {7, 8}};
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(builder.AddEdge(u - 1, v - 1, 1.0).ok());
  }
  return ValueOrDie(std::move(builder).Build());
}

Graph PaperPathGraph() {
  GraphBuilder builder;
  EXPECT_TRUE(builder.AddEdge(0, 1, 1.0).ok());
  EXPECT_TRUE(builder.AddEdge(1, 2, 1.0).ok());
  return ValueOrDie(std::move(builder).Build());
}

Graph RandomConnectedGraph(uint64_t nodes, uint64_t edges, uint64_t seed,
                           bool random_weights) {
  GeneratorOptions options;
  options.num_nodes = nodes;
  options.num_edges = edges;
  options.seed = seed;
  options.random_weights = random_weights;
  return ValueOrDie(GenerateConnected(options));
}

void ExpectTopKMatchesScores(const std::vector<NodeId>& returned,
                             const std::vector<double>& exact_scores,
                             NodeId query, int k, Direction direction,
                             double tol) {
  const std::vector<NodeId> truth =
      TopKFromScores(exact_scores, query, k, direction);
  ASSERT_EQ(returned.size(), truth.size());
  ASSERT_FALSE(truth.empty());
  const double kth = exact_scores[truth.back()];
  for (const NodeId node : returned) {
    ASSERT_NE(node, query) << "query returned as its own neighbor";
    const double s = exact_scores[node];
    if (direction == Direction::kMaximize) {
      EXPECT_GE(s, kth - tol) << "node " << node
                              << " is not within the exact top-" << k;
    } else {
      EXPECT_LE(s, kth + tol) << "node " << node
                              << " is not within the exact top-" << k;
    }
  }
  // No duplicates.
  std::vector<NodeId> sorted(returned);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

}  // namespace testing
}  // namespace flos
