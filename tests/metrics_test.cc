// Unit coverage for the service metrics layer (service/metrics.h):
// counter/gauge semantics, histogram bucketing, conservative percentile
// upper bounds, and the registry's stable text rendering.

#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace flos {
namespace {

TEST(CounterTest, IncrementsAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 4000u);
}

TEST(GaugeTest, TracksPeakValue) {
  Gauge g;
  g.Add(3);
  g.Add(4);   // 7 — the peak
  g.Add(-5);  // 2
  g.Set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 7)
      << "peak must survive later decreases (bounded-queue proof)";
}

TEST(LatencyHistogramTest, BucketsAndStats) {
  LatencyHistogram h;
  h.Record(1);
  h.Record(3);      // bucket with bound 5
  h.Record(999);    // bucket with bound 1000
  h.Record(123456789);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_micros(), 1u + 3u + 999u + 123456789u);
  const auto snapshot = h.Snapshot();
  const auto& bounds = LatencyHistogram::BucketBounds();
  ASSERT_EQ(snapshot.size(), bounds.size() + 1);
  EXPECT_EQ(snapshot.back(), 1u) << "overflow bucket";
  uint64_t total = 0;
  for (const uint64_t n : snapshot) total += n;
  EXPECT_EQ(total, 4u);
}

TEST(LatencyHistogramTest, PercentileIsConservativeUpperBound) {
  LatencyHistogram h;
  // 90 fast samples (~10us) and 10 slow ones (~40ms).
  for (int i = 0; i < 90; ++i) h.Record(9);
  for (int i = 0; i < 10; ++i) h.Record(40000);
  EXPECT_EQ(h.PercentileUpperBound(0.50), 10u);
  EXPECT_EQ(h.PercentileUpperBound(0.90), 10u);
  EXPECT_EQ(h.PercentileUpperBound(0.95), 50000u);
  EXPECT_EQ(h.PercentileUpperBound(0.99), 50000u);
  EXPECT_GE(h.PercentileUpperBound(1.0), 50000u);
}

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileUpperBound(0.99), 0u);
}

TEST(MetricsRegistryTest, RendersStableText) {
  Counter c;
  Gauge g;
  LatencyHistogram h;
  c.Increment(7);
  g.Set(3);
  h.Record(100);
  MetricsRegistry registry;
  registry.RegisterCounter("requests", &c);
  registry.RegisterGauge("depth", &g);
  registry.RegisterHistogram("latency", &h);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("counter requests 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge depth 3 max 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("hist latency count 1 "), std::string::npos) << text;
  EXPECT_NE(text.find("p99_us"), std::string::npos) << text;
}

TEST(ServiceMetricsTest, RegistersTheFullMetricSet) {
  ServiceMetrics metrics;
  metrics.requests_accepted.Increment();
  metrics.queue_depth.Set(5);
  metrics.serve_us.Record(42);
  const std::string text = metrics.registry.RenderText();
  EXPECT_NE(text.find("counter requests_accepted 1"), std::string::npos);
  EXPECT_NE(text.find("counter requests_rejected_overload 0"),
            std::string::npos);
  EXPECT_NE(text.find("gauge queue_depth 5 max 5"), std::string::npos);
  EXPECT_NE(text.find("hist serve_us count 1"), std::string::npos);
  EXPECT_NE(text.find("counter deadline_expiries 0"), std::string::npos);
}

}  // namespace
}  // namespace flos
