// Tests for BFS traversal utilities, graph statistics, edge-list I/O, and
// the dataset presets.

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/edge_list_io.h"
#include "graph/presets.h"
#include "graph/stats.h"
#include "graph/traversal.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::ValueOrDie;

TEST(TraversalTest, BfsDistancesOnExample) {
  const Graph g = PaperExampleGraph();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);  // paper node 2
  EXPECT_EQ(dist[2], 1);  // paper node 3
  EXPECT_EQ(dist[3], 2);  // paper node 4
  EXPECT_EQ(dist[7], 3);  // paper node 8
}

TEST(TraversalTest, UnreachableIsMinusOne) {
  GraphBuilder::Options options;
  options.num_nodes = 4;
  GraphBuilder builder(options);
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(TraversalTest, BfsBallRespectsRadius) {
  const Graph g = PaperExampleGraph();
  const auto ball0 = BfsBall(g, 0, 0);
  EXPECT_EQ(ball0.size(), 1u);
  const auto ball1 = BfsBall(g, 0, 1);
  EXPECT_EQ(ball1.size(), 3u);  // {1,2,3} paper ids
  const auto ball2 = BfsBall(g, 0, 2);
  EXPECT_EQ(ball2.size(), 5u);  // + {4,5}
  const auto ball9 = BfsBall(g, 0, 9);
  EXPECT_EQ(ball9.size(), g.NumNodes());
}

TEST(TraversalTest, ConnectedComponents) {
  GraphBuilder::Options options;
  options.num_nodes = 7;
  GraphBuilder builder(options);
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));
  FLOS_ASSERT_OK(builder.AddEdge(3, 4));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const ComponentResult cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(cc.component[0], cc.component[2]);
  EXPECT_NE(cc.component[0], cc.component[3]);
  EXPECT_NE(cc.component[5], cc.component[6]);
}

TEST(StatsTest, ComputesExampleStats) {
  const Graph g = PaperExampleGraph();
  const GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 8u);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.5);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 8u);
  EXPECT_EQ(s.num_isolated, 0u);
  EXPECT_NE(StatsToString(s).find("|V|=8"), std::string::npos);
}

TEST(EdgeListIoTest, RoundTripsWithWeights) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 2.5));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2, 0.125));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::string path = ::testing::TempDir() + "/edges.txt";
  FLOS_ASSERT_OK(WriteEdgeList(g, path));
  const Graph g2 = ValueOrDie(ReadEdgeList(path));
  EXPECT_EQ(g2.NumNodes(), 3u);
  EXPECT_EQ(g2.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(1, 2), 0.125);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, ParsesSnapStyleInput) {
  const std::string path = ::testing::TempDir() + "/snap.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# comment line\n%% another comment\n");
  std::fprintf(f, "0 1\n1 0\n");   // duplicate in reverse direction
  std::fprintf(f, "1 2\n2 2\n");   // self loop dropped
  std::fclose(f);
  const Graph g = ValueOrDie(ReadEdgeList(path));
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0) << "reverse dup must not double";
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, MissingFileAndGarbage) {
  EXPECT_FALSE(ReadEdgeList("/nonexistent/file.txt").ok());
  const std::string path = ::testing::TempDir() + "/garbage.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "zzz not an edge\n");
  std::fclose(f);
  EXPECT_FALSE(ReadEdgeList(path).ok());
  std::remove(path.c_str());
}

namespace {

/// Writes `content` to a temp file and returns ReadEdgeList's status.
Status ReadContent(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  const Status status = ReadEdgeList(path).status();
  std::remove(path.c_str());
  return status;
}

}  // namespace

TEST(EdgeListIoTest, MalformedLineReportsLineNumber) {
  const Status s = ReadContent("malformed.txt", "0 1\n1 two\n2 3\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":2:"), std::string::npos)
      << "error must carry the 1-based line number: " << s.message();
}

TEST(EdgeListIoTest, NegativeWeightFailsWithLineNumber) {
  const Status s = ReadContent("negweight.txt", "0 1 1.0\n1 2 -0.5\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find(":2:"), std::string::npos) << s.message();
}

TEST(EdgeListIoTest, NegativeNodeIdFails) {
  const Status s = ReadContent("negnode.txt", "0 -1\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":1:"), std::string::npos) << s.message();
}

TEST(EdgeListIoTest, TruncatedLastLineFails) {
  // File ends mid-record: a source id with no destination.
  const Status s = ReadContent("truncated.txt", "0 1\n1 2\n3");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":3:"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("truncated"), std::string::npos) << s.message();
}

TEST(EdgeListIoTest, TrailingGarbageAfterWeightFails) {
  const Status s = ReadContent("trailing.txt", "0 1 1.0 oops\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":1:"), std::string::npos) << s.message();
}

TEST(EdgeListIoTest, MissingWeightColumnStillDefaultsToOne) {
  const std::string path = ::testing::TempDir() + "/noweight.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "0 1\n1 2 2.5\n");
  std::fclose(f);
  const Graph g = ValueOrDie(ReadEdgeList(path));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 2.5);
  std::remove(path.c_str());
}

TEST(PresetsTest, AllPresetsBuildAtSmallScale) {
  for (const GraphPreset& p : RealGraphPresets()) {
    const Graph g = ValueOrDie(BuildPresetGraph(p, /*scale=*/0.002));
    EXPECT_GE(g.NumNodes(), 64u) << p.name;
    EXPECT_GT(g.NumEdges(), 0u) << p.name;
    // Density should roughly track the paper's dataset.
    const double paper_density = 2.0 * static_cast<double>(p.paper_edges) /
                                 static_cast<double>(p.paper_nodes);
    const double got_density = 2.0 * static_cast<double>(g.NumEdges()) /
                               static_cast<double>(g.NumNodes());
    EXPECT_NEAR(got_density, paper_density, paper_density * 0.5) << p.name;
  }
}

TEST(PresetsTest, LookupAndValidation) {
  EXPECT_TRUE(FindPreset("az").ok());
  EXPECT_TRUE(FindPreset("lj").ok());
  EXPECT_FALSE(FindPreset("nope").ok());
  const GraphPreset az = ValueOrDie(FindPreset("az"));
  EXPECT_FALSE(BuildPresetGraph(az, 0.0).ok());
  EXPECT_FALSE(BuildPresetGraph(az, 1.5).ok());
}

}  // namespace
}  // namespace flos
