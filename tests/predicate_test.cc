// Coverage for label predicates: construction invariants, match semantics
// of all three types, MaxMatches bounds, fingerprint distinctness (the
// query-cache key ingredient), and text parsing.

#include "core/predicate.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/labels.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

LabelPredicate MakeOrDie(PredicateType type, std::vector<LabelId> labels) {
  return ValueOrDie(LabelPredicate::Make(type, std::move(labels)));
}

TEST(PredicateMakeTest, SortsAndDedups) {
  const LabelPredicate p =
      MakeOrDie(PredicateType::kOverlap, {5, 1, 5, 3, 1});
  const auto labels = p.labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 1u);
  EXPECT_EQ(labels[1], 3u);
  EXPECT_EQ(labels[2], 5u);
}

TEST(PredicateMakeTest, EnforcesLabelArity) {
  // A typed predicate without labels is meaningless.
  EXPECT_FALSE(LabelPredicate::Make(PredicateType::kEquality, {}).ok());
  EXPECT_FALSE(LabelPredicate::Make(PredicateType::kContainment, {}).ok());
  EXPECT_FALSE(LabelPredicate::Make(PredicateType::kOverlap, {}).ok());
  // kNone with labels is contradictory.
  EXPECT_FALSE(LabelPredicate::Make(PredicateType::kNone, {1}).ok());
  // The default predicate is the empty filter.
  EXPECT_TRUE(LabelPredicate().empty());
  EXPECT_TRUE(ValueOrDie(LabelPredicate::Make(PredicateType::kNone, {}))
                  .empty());
}

TEST(PredicateMatchTest, EqualityIsExactSetEquality) {
  const LabelPredicate p = MakeOrDie(PredicateType::kEquality, {1, 3});
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{1, 3}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{1}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{1, 3, 4}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{1, 4}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{}));
}

TEST(PredicateMatchTest, ContainmentIsSupersetOfQueryLabels) {
  const LabelPredicate p = MakeOrDie(PredicateType::kContainment, {1, 3});
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{1, 3}));
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{0, 1, 3, 7}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{1}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{1, 4}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{}));
}

TEST(PredicateMatchTest, OverlapIsNonEmptyIntersection) {
  const LabelPredicate p = MakeOrDie(PredicateType::kOverlap, {1, 3});
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{3}));
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{0, 1}));
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{1, 3}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{0, 2, 4}));
  EXPECT_FALSE(p.Matches(std::vector<LabelId>{}));
}

TEST(PredicateMatchTest, EmptyPredicateMatchesEverything) {
  const LabelPredicate p;
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{}));
  EXPECT_TRUE(p.Matches(std::vector<LabelId>{0, 5}));
}

TEST(PredicateTest, MaxMatchesBoundsByStoreCounts) {
  // 6 nodes: {0}, {0}, {0,1}, {1}, {1,2}, {}.
  LabelStore::Builder builder(6);
  builder.table().Intern("l0");
  builder.table().Intern("l1");
  builder.table().Intern("l2");
  builder.Add(0, 0);
  builder.Add(1, 0);
  builder.Add(2, 0);
  builder.Add(2, 1);
  builder.Add(3, 1);
  builder.Add(4, 1);
  builder.Add(4, 2);
  const LabelStore store = std::move(builder).Build();

  // Empty predicate: everything can match.
  EXPECT_EQ(LabelPredicate().MaxMatches(store), 6u);
  // Equality / containment are bounded by the rarest required label.
  EXPECT_LE(MakeOrDie(PredicateType::kEquality, {0, 1}).MaxMatches(store),
            3u);
  EXPECT_LE(
      MakeOrDie(PredicateType::kContainment, {1, 2}).MaxMatches(store), 1u);
  // Overlap is bounded by the sum of label counts.
  EXPECT_LE(MakeOrDie(PredicateType::kOverlap, {0, 2}).MaxMatches(store),
            4u);
  // MaxMatches is an upper bound: never below the true match count.
  const LabelPredicate overlap01 =
      MakeOrDie(PredicateType::kOverlap, {0, 1});
  uint64_t actual = 0;
  for (NodeId v = 0; v < 6; ++v) {
    if (overlap01.Matches(store.Labels(v))) ++actual;
  }
  EXPECT_GE(overlap01.MaxMatches(store), actual);
  EXPECT_EQ(actual, 5u);
  // A label no node carries bounds equality/containment to zero.
  builder = LabelStore::Builder(2);
  builder.table().Intern("used");
  builder.table().Intern("unused");
  builder.Add(0, 0);
  builder.Add(1, 0);
  const LabelStore sparse = std::move(builder).Build();
  EXPECT_EQ(MakeOrDie(PredicateType::kContainment, {1}).MaxMatches(sparse),
            0u);
}

TEST(PredicateTest, FingerprintSeparatesTypeAndLabels) {
  const std::vector<LabelPredicate> distinct = {
      MakeOrDie(PredicateType::kEquality, {1}),
      MakeOrDie(PredicateType::kContainment, {1}),
      MakeOrDie(PredicateType::kOverlap, {1}),
      MakeOrDie(PredicateType::kOverlap, {2}),
      MakeOrDie(PredicateType::kOverlap, {1, 2}),
      MakeOrDie(PredicateType::kEquality, {1, 2}),
  };
  std::set<uint64_t> fingerprints;
  for (const LabelPredicate& p : distinct) {
    EXPECT_NE(p.Fingerprint(), 0u)
        << p.ToString() << ": 0 is reserved for the empty predicate";
    fingerprints.insert(p.Fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), distinct.size())
      << "distinct predicates must not collide in the cache key";
  // The empty predicate fingerprints to exactly 0 (unfiltered cache key).
  EXPECT_EQ(LabelPredicate().Fingerprint(), 0u);
  // Same predicate -> same fingerprint, and label input order is
  // irrelevant (Make canonicalizes).
  EXPECT_EQ(MakeOrDie(PredicateType::kOverlap, {2, 1}).Fingerprint(),
            MakeOrDie(PredicateType::kOverlap, {1, 2}).Fingerprint());
}

TEST(PredicateTest, EqualityOperatorComparesCanonicalForm) {
  EXPECT_EQ(MakeOrDie(PredicateType::kOverlap, {2, 1}),
            MakeOrDie(PredicateType::kOverlap, {1, 2, 2}));
  EXPECT_FALSE(MakeOrDie(PredicateType::kOverlap, {1}) ==
               MakeOrDie(PredicateType::kContainment, {1}));
}

TEST(ParsePredicateTest, ParsesNumericIds) {
  EXPECT_TRUE(ValueOrDie(ParsePredicate("none", nullptr)).empty());
  EXPECT_TRUE(ValueOrDie(ParsePredicate("", nullptr)).empty());
  const LabelPredicate eq = ValueOrDie(ParsePredicate("eq:3,1", nullptr));
  EXPECT_EQ(eq.type(), PredicateType::kEquality);
  ASSERT_EQ(eq.labels().size(), 2u);
  EXPECT_EQ(eq.labels()[0], 1u);
  EXPECT_EQ(eq.labels()[1], 3u);
  EXPECT_EQ(ValueOrDie(ParsePredicate("contain:7", nullptr)).type(),
            PredicateType::kContainment);
  EXPECT_EQ(ValueOrDie(ParsePredicate("overlap:7", nullptr)).type(),
            PredicateType::kOverlap);
}

TEST(ParsePredicateTest, ResolvesNamesThroughTable) {
  LabelTable table;
  table.Intern("red");
  table.Intern("blue");
  const LabelPredicate p =
      ValueOrDie(ParsePredicate("overlap:blue,red", &table));
  ASSERT_EQ(p.labels().size(), 2u);
  EXPECT_EQ(p.labels()[0], 0u);
  EXPECT_EQ(p.labels()[1], 1u);
  const auto unknown = ParsePredicate("overlap:green", &table);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(ParsePredicateTest, RejectsMalformedText) {
  EXPECT_FALSE(ParsePredicate("frobnicate:1", nullptr).ok());
  EXPECT_FALSE(ParsePredicate("eq:", nullptr).ok());
  EXPECT_FALSE(ParsePredicate("eq", nullptr).ok());
  // Names need a table to resolve against.
  EXPECT_FALSE(ParsePredicate("eq:red", nullptr).ok());
  // Numeric id at or beyond the sentinel.
  EXPECT_FALSE(ParsePredicate("eq:4294967295", nullptr).ok());
}

}  // namespace
}  // namespace flos
