// Filtered (label-constrained) engine correctness: exactness parity for
// every measure x predicate type against the whole-graph exact solvers
// restricted to matching nodes, the fewer-than-k and zero-match paths,
// query-cache predicate isolation, and warm-subgraph sharing across
// predicates.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "core/predicate.h"
#include "core/query_cache.h"
#include "core/subgraph_cache.h"
#include "graph/accessor.h"
#include "graph/labels.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::RandomConnectedGraph;
using flos::testing::ValueOrDie;

/// Certified scores are interval midpoints; the solver separates ranks to
/// FlosOptions::tolerance (1e-5), so parity checks allow that slack.
constexpr double kTol = 2e-5;

LabelPredicate MakeOrDie(PredicateType type, std::vector<LabelId> labels) {
  return ValueOrDie(LabelPredicate::Make(type, std::move(labels)));
}

/// Labels for parity tests: a small universe, 2 per node, uniform, so
/// every predicate type has a healthy match population.
LabelStore TestLabels(uint64_t num_nodes, uint64_t seed = 11) {
  LabelGenOptions options;
  options.num_nodes = num_nodes;
  options.num_labels = 6;
  options.labels_per_node = 2;
  options.seed = seed;
  return ValueOrDie(GenerateUniformLabels(options));
}

/// The exact filtered answer: scores of matching nodes (query excluded),
/// best-first under the measure's direction.
std::vector<double> MatchingScoresSorted(const std::vector<double>& exact,
                                         const LabelStore& labels,
                                         const LabelPredicate& predicate,
                                         NodeId query, Direction direction) {
  std::vector<double> scores;
  for (NodeId v = 0; v < static_cast<NodeId>(exact.size()); ++v) {
    if (v == query) continue;
    if (!predicate.Matches(labels.Labels(v))) continue;
    scores.push_back(exact[v]);
  }
  std::sort(scores.begin(), scores.end(), [direction](double a, double b) {
    return IsCloser(direction, a, b);
  });
  return scores;
}

/// Asserts `result` is the certified exact filtered top-k: every returned
/// node matches the predicate, and the returned SET is exactly the k best
/// matching nodes. Certification proves set membership; the order WITHIN
/// the set is only resolved up to interval overlap, so the true scores of
/// the returned nodes are compared sorted, not positionally.
void ExpectFilteredParity(const Graph& graph, const LabelStore& labels,
                          const LabelPredicate& predicate, NodeId query,
                          int k, Measure measure, const FlosResult& result) {
  MeasureParams params;
  const std::vector<double> exact =
      ValueOrDie(ExactMeasure(graph, query, measure, params));
  const Direction direction = MeasureDirection(measure);
  const std::vector<double> best = MatchingScoresSorted(
      exact, labels, predicate, query, direction);
  const size_t expect_n =
      std::min<size_t>(static_cast<size_t>(k), best.size());
  ASSERT_EQ(result.topk.size(), expect_n)
      << MeasureName(measure) << " " << predicate.ToString();
  EXPECT_TRUE(result.stats.exact);
  std::vector<double> returned;
  for (const ScoredNode& s : result.topk) {
    EXPECT_NE(s.node, query);
    EXPECT_TRUE(predicate.Matches(labels.Labels(s.node)))
        << "node " << s.node << " violates " << predicate.ToString();
    // The certified interval must sandwich the true score.
    EXPECT_LE(s.lower, exact[s.node] + kTol);
    EXPECT_GE(s.upper, exact[s.node] - kTol);
    returned.push_back(exact[s.node]);
  }
  std::sort(returned.begin(), returned.end(),
            [direction](double a, double b) {
              return IsCloser(direction, a, b);
            });
  for (size_t i = 0; i < returned.size(); ++i) {
    EXPECT_NEAR(returned[i], best[i], kTol)
        << MeasureName(measure) << " " << predicate.ToString() << " rank "
        << i;
  }
}

TEST(FilteredEngineTest, ParityForEveryMeasureAndPredicateType) {
  const Graph graph = RandomConnectedGraph(300, 1400, 7);
  const LabelStore labels = TestLabels(graph.NumNodes());
  const std::vector<LabelPredicate> predicates = {
      MakeOrDie(PredicateType::kEquality, {0, 2}),
      MakeOrDie(PredicateType::kContainment, {1}),
      MakeOrDie(PredicateType::kOverlap, {3, 4}),
  };
  const std::vector<Measure> measures = {Measure::kPhp, Measure::kEi,
                                         Measure::kDht, Measure::kTht,
                                         Measure::kRwr};
  for (const Measure measure : measures) {
    for (const LabelPredicate& predicate : predicates) {
      FlosOptions options;
      options.measure = measure;
      options.labels = &labels;
      options.predicate = predicate;
      const NodeId query = 5;
      const FlosResult result =
          ValueOrDie(FlosTopK(graph, query, 10, options));
      ExpectFilteredParity(graph, labels, predicate, query, 10, measure,
                           result);
    }
  }
}

TEST(FilteredEngineTest, FewerMatchesThanKStillCertifies) {
  const Graph graph = RandomConnectedGraph(200, 900, 3);
  // "rare" on exactly 3 nodes, "common" everywhere.
  LabelStore::Builder builder(graph.NumNodes());
  const LabelId common = builder.table().Intern("common");
  const LabelId rare = builder.table().Intern("rare");
  for (NodeId v = 0; v < static_cast<NodeId>(graph.NumNodes()); ++v) {
    builder.Add(v, common);
  }
  builder.Add(17, rare);
  builder.Add(90, rare);
  builder.Add(155, rare);
  const LabelStore labels = std::move(builder).Build();

  FlosOptions options;
  options.labels = &labels;
  options.predicate = MakeOrDie(PredicateType::kContainment, {rare});
  const FlosResult result = ValueOrDie(FlosTopK(graph, 0, 10, options));
  EXPECT_TRUE(result.stats.exact)
      << "k above the match count must still certify via k_eff";
  ASSERT_EQ(result.topk.size(), 3u);
  ExpectFilteredParity(graph, labels, options.predicate, 0, 10,
                       Measure::kPhp, result);
}

TEST(FilteredEngineTest, ZeroMatchesCertifiesEmptyWithoutSearch) {
  const Graph graph = RandomConnectedGraph(100, 400, 9);
  LabelStore::Builder builder(graph.NumNodes());
  const LabelId used = builder.table().Intern("used");
  const LabelId unused = builder.table().Intern("unused");
  for (NodeId v = 0; v < static_cast<NodeId>(graph.NumNodes()); ++v) {
    builder.Add(v, used);
  }
  const LabelStore labels = std::move(builder).Build();

  FlosOptions options;
  options.labels = &labels;
  options.predicate = MakeOrDie(PredicateType::kContainment, {unused});
  const FlosResult result = ValueOrDie(FlosTopK(graph, 0, 5, options));
  EXPECT_TRUE(result.topk.empty());
  EXPECT_TRUE(result.stats.exact) << "an empty filtered answer is exact";
  EXPECT_EQ(result.stats.visited_nodes, 0u)
      << "MaxMatches == 0 must shortcut the search entirely";
}

TEST(FilteredEngineTest, PredicateWithoutStoreIsRejected) {
  const Graph graph = RandomConnectedGraph(50, 200, 1);
  FlosOptions options;
  options.predicate = MakeOrDie(PredicateType::kOverlap, {0});
  EXPECT_FALSE(FlosTopK(graph, 0, 5, options).ok());
}

TEST(FilteredEngineTest, MismatchedStoreSizeIsRejected) {
  const Graph graph = RandomConnectedGraph(50, 200, 1);
  const LabelStore labels = TestLabels(graph.NumNodes() - 1);
  FlosOptions options;
  options.labels = &labels;
  options.predicate = MakeOrDie(PredicateType::kOverlap, {0});
  EXPECT_FALSE(FlosTopK(graph, 0, 5, options).ok());
}

TEST(FilteredEngineTest, QueryCacheNeverCrossesPredicates) {
  const Graph graph = RandomConnectedGraph(250, 1100, 5);
  const LabelStore labels = TestLabels(graph.NumNodes());
  InMemoryAccessor accessor(&graph);
  FlosEngine engine(&accessor);
  QueryCache cache(64);
  engine.set_query_cache(&cache);

  const NodeId query = 4;
  FlosOptions unfiltered;
  const FlosResult plain =
      ValueOrDie(engine.TopK(query, 10, unfiltered));
  EXPECT_FALSE(plain.stats.cache_hit);

  // Same (query, k, measure, c) with a predicate: must MISS the cached
  // unfiltered answer and produce the filtered one.
  FlosOptions filtered = unfiltered;
  filtered.labels = &labels;
  filtered.predicate = MakeOrDie(PredicateType::kContainment, {2});
  const FlosResult first =
      ValueOrDie(engine.TopK(query, 10, filtered));
  EXPECT_FALSE(first.stats.cache_hit)
      << "the unfiltered entry must not satisfy a filtered query";
  for (const ScoredNode& s : first.topk) {
    EXPECT_TRUE(filtered.predicate.Matches(labels.Labels(s.node)));
  }

  // A different predicate with the same shape must also miss.
  FlosOptions other = filtered;
  other.predicate = MakeOrDie(PredicateType::kContainment, {3});
  const FlosResult second = ValueOrDie(engine.TopK(query, 10, other));
  EXPECT_FALSE(second.stats.cache_hit);
  for (const ScoredNode& s : second.topk) {
    EXPECT_TRUE(other.predicate.Matches(labels.Labels(s.node)));
  }

  // Repeats of each keyed variant hit, and return their own answers.
  const FlosResult plain2 = ValueOrDie(engine.TopK(query, 10, unfiltered));
  EXPECT_TRUE(plain2.stats.cache_hit);
  const FlosResult first2 = ValueOrDie(engine.TopK(query, 10, filtered));
  EXPECT_TRUE(first2.stats.cache_hit);
  ASSERT_EQ(first2.topk.size(), first.topk.size());
  for (size_t i = 0; i < first.topk.size(); ++i) {
    EXPECT_EQ(first2.topk[i].node, first.topk[i].node);
  }
}

TEST(FilteredEngineTest, EpochInvalidationStillAppliesToFilteredEntries) {
  // The filtered cache key extends (seed, k, measure, ...) with the
  // predicate fingerprint; the epoch component must keep working so a
  // mutated graph can't serve stale filtered answers.
  const Graph graph = RandomConnectedGraph(150, 700, 13);
  const LabelStore labels = TestLabels(graph.NumNodes());
  InMemoryAccessor accessor(&graph);
  FlosEngine engine(&accessor);
  QueryCache cache(64);
  engine.set_query_cache(&cache);

  FlosOptions filtered;
  filtered.labels = &labels;
  filtered.predicate = MakeOrDie(PredicateType::kOverlap, {1});
  const FlosResult a = ValueOrDie(engine.TopK(2, 5, filtered));
  EXPECT_FALSE(a.stats.cache_hit);
  FlosResult out;
  QueryCache::Key key;
  key.query = 2;
  key.measure = Measure::kPhp;
  key.k = 5;
  key.c = filtered.c;
  key.tht_length = filtered.tht_length;
  key.epoch = accessor.Epoch();
  key.predicate_fp = filtered.predicate.Fingerprint();
  EXPECT_TRUE(cache.Lookup(key, &out))
      << "the filtered answer must be filed under its fingerprint";
  key.epoch = accessor.Epoch() + 1;
  EXPECT_FALSE(cache.Lookup(key, &out))
      << "an epoch bump must invalidate filtered entries too";
}

TEST(FilteredEngineTest, SubgraphSnapshotsAreSharedAcrossPredicates) {
  // The warm-subgraph tier is keyed on (seed, bound family, alpha, epoch)
  // WITHOUT the predicate: a snapshot is a fact about the graph's fixed
  // point, so predicate B may resume from the subgraph predicate A
  // expanded. The filtered answers must still differ per predicate.
  const Graph graph = RandomConnectedGraph(250, 1100, 17);
  const LabelStore labels = TestLabels(graph.NumNodes());
  InMemoryAccessor accessor(&graph);
  FlosEngine engine(&accessor);
  SubgraphCache cache(8);
  engine.set_subgraph_cache(&cache);

  FlosOptions a;
  a.labels = &labels;
  a.predicate = MakeOrDie(PredicateType::kContainment, {2});
  const NodeId query = 6;
  const FlosResult cold = ValueOrDie(engine.TopK(query, 8, a));
  EXPECT_FALSE(cold.stats.subgraph_hit);
  EXPECT_TRUE(cold.stats.exact);

  FlosOptions b = a;
  b.predicate = MakeOrDie(PredicateType::kContainment, {3});
  const FlosResult warm = ValueOrDie(engine.TopK(query, 8, b));
  EXPECT_TRUE(warm.stats.subgraph_hit)
      << "snapshots are predicate-independent by design";
  EXPECT_TRUE(warm.stats.exact);
  ExpectFilteredParity(graph, labels, b.predicate, query, 8, Measure::kPhp,
                       warm);
}

}  // namespace
}  // namespace flos
