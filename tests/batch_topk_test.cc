// ThreadPool unit tests and BatchTopK behavior: input-order preservation,
// agreement with serial FlosTopK, error propagation, and edge cases.

#include "core/batch_topk.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/flos.h"
#include "graph/accessor.h"
#include "measures/measure.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitThenSubmitMoreWorks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  for (int i = 0; i < 10; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { count.fetch_add(1); });
    // No Wait(): the destructor must still run every queued task.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);  // must not deadlock or crash
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

FlosOptions DefaultOptions() {
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = 0.5;
  return options;
}

void ExpectSameResult(const FlosResult& a, const FlosResult& b) {
  ASSERT_EQ(a.topk.size(), b.topk.size());
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].node, b.topk[i].node);
    EXPECT_EQ(a.topk[i].score, b.topk[i].score);
  }
  EXPECT_EQ(a.stats.exact, b.stats.exact);
}

TEST(BatchTopKTest, PreservesInputOrderAndMatchesSerial) {
  const Graph g = RandomConnectedGraph(300, 900, 11);
  const FlosOptions options = DefaultOptions();
  std::vector<NodeId> queries;
  for (NodeId q = 0; q < 40; ++q) {
    queries.push_back(static_cast<NodeId>((q * 37) % g.NumNodes()));
  }

  std::vector<FlosResult> serial;
  for (const NodeId q : queries) {
    serial.push_back(ValueOrDie(FlosTopK(g, q, 10, options)));
  }
  for (const int threads : {1, 2, 4}) {
    const std::vector<FlosResult> batch =
        ValueOrDie(BatchTopK(g, queries, 10, options, threads));
    ASSERT_EQ(batch.size(), queries.size()) << threads << " threads";
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResult(batch[i], serial[i]);
    }
  }
}

TEST(BatchTopKTest, RepeatedQueriesEachGetTheSameAnswer) {
  const Graph g = RandomConnectedGraph(200, 600, 13);
  const std::vector<NodeId> queries(16, NodeId{5});  // all identical
  const std::vector<FlosResult> batch =
      ValueOrDie(BatchTopK(g, queries, 5, DefaultOptions(), 4));
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 1; i < batch.size(); ++i) {
    ExpectSameResult(batch[i], batch[0]);
  }
}

TEST(BatchTopKTest, EmptyBatchReturnsEmptyResults) {
  const Graph g = RandomConnectedGraph(50, 150, 3);
  const std::vector<FlosResult> batch =
      ValueOrDie(BatchTopK(g, {}, 5, DefaultOptions(), 4));
  EXPECT_TRUE(batch.empty());
}

TEST(BatchTopKTest, MoreThreadsThanQueriesWorks) {
  const Graph g = RandomConnectedGraph(100, 300, 7);
  const std::vector<NodeId> queries = {1, 2};
  const std::vector<FlosResult> batch =
      ValueOrDie(BatchTopK(g, queries, 5, DefaultOptions(), 16));
  ASSERT_EQ(batch.size(), 2u);
}

TEST(BatchTopKTest, AnyInvalidQueryFailsTheWholeBatch) {
  const Graph g = RandomConnectedGraph(100, 300, 7);
  std::vector<NodeId> queries;
  for (NodeId q = 0; q < 20; ++q) queries.push_back(q);
  queries.push_back(static_cast<NodeId>(g.NumNodes()));  // out of range
  const auto result = BatchTopK(g, queries, 5, DefaultOptions(), 4);
  EXPECT_FALSE(result.ok());
}

TEST(BatchTopKTest, AccessorFactoryErrorPropagates) {
  const std::vector<NodeId> queries = {0, 1, 2};
  const auto result = BatchTopK(
      []() -> Result<std::unique_ptr<GraphAccessor>> {
        return Status::InvalidArgument("no accessor for you");
      },
      queries, 5, DefaultOptions(), 2);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("no accessor"), std::string::npos);
}

TEST(BatchTopKTest, FactoryOverloadMatchesGraphOverload) {
  const Graph g = RandomConnectedGraph(150, 450, 19);
  std::vector<NodeId> queries = {0, 10, 20, 30, 149};
  const FlosOptions options = DefaultOptions();
  const std::vector<FlosResult> via_graph =
      ValueOrDie(BatchTopK(g, queries, 8, options, 2));
  const std::vector<FlosResult> via_factory = ValueOrDie(BatchTopK(
      [&g]() -> Result<std::unique_ptr<GraphAccessor>> {
        return std::unique_ptr<GraphAccessor>(
            std::make_unique<InMemoryAccessor>(&g));
      },
      queries, 8, options, 2));
  ASSERT_EQ(via_graph.size(), via_factory.size());
  for (size_t i = 0; i < via_graph.size(); ++i) {
    ExpectSameResult(via_graph[i], via_factory[i]);
  }
}

}  // namespace
}  // namespace flos
