// ThreadPool lifecycle coverage: graceful-shutdown drain semantics and
// Submit-after-Shutdown rejection. Runs under the TSAN CI job, which is
// where ordering bugs in the queue/shutdown handshake would surface.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "tests/test_util.h"

namespace flos {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    FLOS_ASSERT_OK(pool.Submit([&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedAndInFlightTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Two blockers occupy both workers so the remaining tasks are provably
  // still queued when Shutdown begins.
  for (int i = 0; i < 2; ++i) {
    FLOS_ASSERT_OK(pool.Submit([&ran, &release] {
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (int i = 0; i < 50; ++i) {
    FLOS_ASSERT_OK(pool.Submit([&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  std::thread unblocker([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(true, std::memory_order_release);
  });
  pool.Shutdown();  // must wait for all 52, not abandon the queued 50
  unblocker.join();
  EXPECT_EQ(ran.load(), 52);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejectedAndNeverRuns) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  FLOS_ASSERT_OK(pool.Submit([&ran] {
    ran.fetch_add(1, std::memory_order_relaxed);
  }));
  pool.Shutdown();
  const Status rejected = pool.Submit([&ran] {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition)
      << rejected.ToString();
  pool.Shutdown();  // idempotent
  EXPECT_EQ(ran.load(), 1) << "rejected task must never execute";
}

TEST(ThreadPoolTest, DestructorAfterShutdownIsSafe) {
  auto pool = std::make_unique<ThreadPool>(2);
  FLOS_ASSERT_OK(pool->Submit([] {}));
  pool->Shutdown();
  pool.reset();  // ~ThreadPool calls Shutdown again; must be a no-op
}

}  // namespace
}  // namespace flos
