// Tests for the bound engines: the sandwich invariant (lower <= exact <=
// upper at every iteration), monotone convergence (Section 5.2), self-loop
// tightening (Section 5.3), and the Figure 4 trajectory on the paper's
// example graph.

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "core/local_graph.h"
#include "core/unified_bound_engine.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

class BoundSandwichTest
    : public ::testing::TestWithParam<std::tuple<bool, uint64_t>> {};

TEST_P(BoundSandwichTest, BoundsBracketExactAndConvergeMonotonically) {
  const auto [self_loop, seed] = GetParam();
  const Graph g = RandomConnectedGraph(150, 450, seed);
  const NodeId q = static_cast<NodeId>(seed % g.NumNodes());
  const double c = 0.5;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const std::vector<double> exact = ValueOrDie(ExactPhp(g, q, c, tight));

  const BoundTrace trace =
      ValueOrDie(TraceFlosBounds(g, q, c, self_loop, /*max_iterations=*/500));
  ASSERT_FALSE(trace.iterations.empty());

  std::vector<double> prev_lower;
  std::vector<double> prev_upper;
  double prev_dummy = 1.0;
  for (const auto& it : trace.iterations) {
    for (size_t i = 0; i < it.nodes.size(); ++i) {
      const double truth = exact[it.nodes[i]];
      ASSERT_LE(it.lower[i], truth + 1e-9)
          << "lower bound above exact for node " << it.nodes[i];
      ASSERT_GE(it.upper[i], truth - 1e-9)
          << "upper bound below exact for node " << it.nodes[i];
      // Monotonicity vs. the previous iteration (prefix of same nodes).
      if (i < prev_lower.size()) {
        ASSERT_GE(it.lower[i], prev_lower[i] - 1e-12);
        ASSERT_LE(it.upper[i], prev_upper[i] + 1e-12);
      }
    }
    ASSERT_LE(it.dummy_value, prev_dummy + 1e-12) << "dummy must not increase";
    prev_dummy = it.dummy_value;
    prev_lower = it.lower;
    prev_upper = it.upper;
  }
  // Once the whole component is visited, the bounds close.
  const auto& last = trace.iterations.back();
  ASSERT_EQ(last.nodes.size(), g.NumNodes());
  for (size_t i = 0; i < last.nodes.size(); ++i) {
    EXPECT_NEAR(last.lower[i], exact[last.nodes[i]], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(SelfLoopOnOff, BoundSandwichTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(BoundTighteningTest, SelfLoopsGiveTighterOrEqualBounds) {
  const Graph g = RandomConnectedGraph(200, 600, 4);
  const NodeId q = 9;
  const BoundTrace plain = ValueOrDie(TraceFlosBounds(g, q, 0.5, false, 40));
  const BoundTrace tight = ValueOrDie(TraceFlosBounds(g, q, 0.5, true, 40));
  const size_t common =
      std::min(plain.iterations.size(), tight.iterations.size());
  ASSERT_GT(common, 5u);
  double total_plain = 0;
  double total_tight = 0;
  for (size_t t = 0; t < common; ++t) {
    const auto& p = plain.iterations[t];
    const auto& s = tight.iterations[t];
    // Expansion order can differ; compare aggregate interval width on the
    // common node count.
    const size_t m = std::min(p.nodes.size(), s.nodes.size());
    for (size_t i = 0; i < m; ++i) {
      total_plain += p.upper[i] - p.lower[i];
      total_tight += s.upper[i] - s.lower[i];
    }
  }
  EXPECT_LE(total_tight, total_plain + 1e-9)
      << "self-loop tightening should not widen bounds";
  EXPECT_LT(total_tight, total_plain) << "and should strictly tighten overall";
}

TEST(PaperFigure4Test, BoundsOnExampleGraphBehaveAsReported) {
  // q = 1 (0-based 0), c = 0.8: Figure 4 shows monotone bounds converging
  // to the exact values, with the top-2 {2, 3} separable at iteration 4
  // while node 8 is still unvisited.
  const Graph g = PaperExampleGraph();
  ExactSolveOptions tight_opts;
  tight_opts.tolerance = 1e-13;
  const std::vector<double> exact = ValueOrDie(ExactPhp(g, 0, 0.8, tight_opts));
  const BoundTrace trace = ValueOrDie(TraceFlosBounds(g, 0, 0.8, true, 100));
  ASSERT_GE(trace.iterations.size(), 4u);
  // At iteration 4 (index 3), nodes {2,3} (0-based 1,2) should be separable
  // from everything else: min lower of {1,2} >= max upper of the rest.
  const auto& it4 = trace.iterations[3];
  double min_top = 1e300;
  double max_rest = 0;
  for (size_t i = 0; i < it4.nodes.size(); ++i) {
    if (it4.nodes[i] == 0) continue;  // query
    if (it4.nodes[i] == 1 || it4.nodes[i] == 2) {
      min_top = std::min(min_top, it4.lower[i]);
    } else {
      max_rest = std::max(max_rest, it4.upper[i]);
    }
  }
  EXPECT_LT(it4.nodes.size(), g.NumNodes()) << "node 8 should be unvisited";
  EXPECT_GE(min_top, max_rest)
      << "top-2 should be certified at iteration 4 (Figure 4)";
}

TEST(ThtBoundsTest, SandwichAndConvergence) {
  const Graph g = RandomConnectedGraph(120, 360, 8);
  const NodeId q = 4;
  const int length = 8;
  const std::vector<double> exact = ValueOrDie(ExactTht(g, q, length));

  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(q));
  UnifiedBoundOptions be;
  be.traits.family = BoundFamily::kHorizonDp;
  be.traits.horizon = length;
  UnifiedBoundEngine engine(&local, be);
  std::vector<double> prev_lower;
  std::vector<double> prev_upper;
  // Expand arbitrarily (round-robin over boundary) until exhausted.
  while (true) {
    LocalId pick = kInvalidLocal;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsBoundary(i)) {
        pick = i;
        break;
      }
    }
    if (pick == kInvalidLocal) break;
    ASSERT_TRUE(local.Expand(pick).ok());
    engine.OnGrowth();
    engine.UpdateBounds();
    for (LocalId i = 0; i < local.Size(); ++i) {
      const double truth = exact[local.GlobalId(i)];
      ASSERT_LE(engine.lower(i), truth + 1e-9);
      ASSERT_GE(engine.upper(i), truth - 1e-9);
      if (i < prev_lower.size()) {
        ASSERT_GE(engine.lower(i), prev_lower[i] - 1e-12);
        ASSERT_LE(engine.upper(i), prev_upper[i] + 1e-12);
      }
    }
    prev_lower.clear();
    prev_upper.clear();
    for (LocalId i = 0; i < local.Size(); ++i) {
      prev_lower.push_back(engine.lower(i));
      prev_upper.push_back(engine.upper(i));
    }
  }
  // Exhausted: bounds coincide with the exact THT.
  for (LocalId i = 0; i < local.Size(); ++i) {
    EXPECT_NEAR(engine.lower(i), exact[local.GlobalId(i)], 1e-9);
    EXPECT_NEAR(engine.upper(i), exact[local.GlobalId(i)], 1e-9);
  }
}

}  // namespace
}  // namespace flos
