// Tests for the LocalGraph visited-set bookkeeping.

#include "core/local_graph.h"

#include <gtest/gtest.h>

#include "graph/accessor.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(LocalGraphTest, InitAddsQueryOnly) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  EXPECT_EQ(local.Size(), 1u);
  EXPECT_TRUE(local.Contains(0));
  EXPECT_FALSE(local.Contains(1));
  EXPECT_EQ(local.LocalIndex(0), 0u);
  EXPECT_EQ(local.LocalIndex(1), kInvalidLocal);
  EXPECT_EQ(local.GlobalId(0), 0u);
  EXPECT_TRUE(local.IsBoundary(0)) << "query has unvisited neighbors";
  EXPECT_EQ(local.OutsideCount(0), 2u);  // neighbors 2,3 (paper ids)
  EXPECT_DOUBLE_EQ(local.WeightedDegree(0), 2.0);
  EXPECT_FALSE(local.Init(0).ok()) << "double init must fail";
}

TEST(LocalGraphTest, ExpandTracksBoundaryAndRows) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  // Expand the query: S = {1,2,3} in paper ids.
  EXPECT_EQ(ValueOrDie(local.Expand(0)), 2u);
  EXPECT_EQ(local.Size(), 3u);
  EXPECT_FALSE(local.IsBoundary(0)) << "all of q's neighbors visited";
  // Node 2 (paper) has neighbors {1,4}: 4 unvisited.
  const LocalId l2 = local.LocalIndex(1);
  EXPECT_EQ(local.OutsideCount(l2), 1u);
  // Row of node 2 contains only the visited neighbor q with p = 1/2.
  const LocalRow row = local.Row(l2);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row.idx[0], local.LocalIndex(0));
  EXPECT_DOUBLE_EQ(row.weight[0], 0.5);
  EXPECT_FALSE(local.Exhausted());
}

TEST(LocalGraphTest, ReverseRowsArePatchedOnJoin) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  FLOS_ASSERT_OK(local.Expand(0).status());
  // Expand node 3 (paper): adds 4 and 5.
  const LocalId l3 = local.LocalIndex(2);
  FLOS_ASSERT_OK(local.Expand(l3).status());
  EXPECT_EQ(local.Size(), 5u);
  // Node 2's row must now also contain node 4 (p = 1/2).
  const LocalRow row2 = local.Row(local.LocalIndex(1));
  EXPECT_EQ(row2.size(), 2u);
  // Node 4's row has visited neighbors {2,3} with p = 1/4 each.
  const LocalRow row4 = local.Row(local.LocalIndex(3));
  EXPECT_EQ(row4.size(), 2u);
  for (uint32_t e = 0; e < row4.len; ++e) {
    EXPECT_DOUBLE_EQ(row4.weight[e], 0.25);
  }
}

TEST(LocalGraphTest, ExhaustionOnFullVisit) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  while (true) {
    LocalId pick = kInvalidLocal;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsBoundary(i)) {
        pick = i;
        break;
      }
    }
    if (pick == kInvalidLocal) break;
    FLOS_ASSERT_OK(local.Expand(pick).status());
  }
  EXPECT_TRUE(local.Exhausted());
  EXPECT_EQ(local.BoundaryCount(), 0u);
  EXPECT_EQ(local.Size(), g.NumNodes());
  for (LocalId i = 0; i < local.Size(); ++i) {
    EXPECT_EQ(local.OutsideCount(i), 0u);
  }
  // Visited count equals accessor fetches.
  EXPECT_EQ(accessor.stats().neighbor_fetches, g.NumNodes());
}

TEST(LocalGraphTest, MaintainedBoundaryCountMatchesScan) {
  // The O(1) Exhausted()/BoundaryCount() must agree with a full scan of
  // the outside counts after EVERY expansion, across random graphs.
  for (const uint64_t seed : {11u, 12u, 13u}) {
    const Graph g = RandomConnectedGraph(120, 360, seed);
    InMemoryAccessor accessor(&g);
    LocalGraph local(&accessor);
    FLOS_ASSERT_OK(local.Init(static_cast<NodeId>(seed % g.NumNodes())));
    Rng rng(seed);
    while (!local.Exhausted()) {
      uint32_t scanned = 0;
      for (LocalId i = 0; i < local.Size(); ++i) {
        if (local.OutsideCount(i) > 0) ++scanned;
      }
      ASSERT_EQ(local.BoundaryCount(), scanned);
      ASSERT_EQ(local.Exhausted(), scanned == 0);
      // Expand a random boundary node.
      std::vector<LocalId> boundary;
      for (LocalId i = 0; i < local.Size(); ++i) {
        if (local.IsBoundary(i)) boundary.push_back(i);
      }
      ASSERT_FALSE(boundary.empty());
      const LocalId pick =
          boundary[rng.NextBounded(static_cast<uint64_t>(boundary.size()))];
      FLOS_ASSERT_OK(local.Expand(pick).status());
    }
    uint32_t scanned = 0;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.OutsideCount(i) > 0) ++scanned;
    }
    EXPECT_EQ(scanned, 0u);
    EXPECT_EQ(local.BoundaryCount(), 0u);
  }
}

TEST(LocalGraphTest, RowInMassMatchesRowScan) {
  const Graph g = RandomConnectedGraph(100, 300, 5);
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(3));
  for (int step = 0; step < 12 && !local.Exhausted(); ++step) {
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsBoundary(i)) {
        FLOS_ASSERT_OK(local.Expand(i).status());
        break;
      }
    }
    for (LocalId i = 0; i < local.Size(); ++i) {
      const LocalRow row = local.Row(i);
      double sum = 0;
      for (uint32_t e = 0; e < row.len; ++e) sum += row.weight[e];
      ASSERT_DOUBLE_EQ(local.RowInMass(i), sum)
          << "maintained in-mass diverged from the row at node " << i;
    }
  }
}

TEST(LocalGraphTest, RowsSurviveSlabGrowthAndReset) {
  // A star center's row grows far past the minimum slab; every entry must
  // survive the copies, and a Reset+reinit must rebuild cleanly on the
  // kept arena.
  GraphBuilder builder;
  const int kLeaves = 70;
  for (int i = 1; i <= kLeaves; ++i) {
    builder.AddEdge(0, static_cast<NodeId>(i), 1.0);
  }
  const Graph g = ValueOrDie(std::move(builder).Build());
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  for (int round = 0; round < 3; ++round) {
    FLOS_ASSERT_OK(local.Init(1));  // a leaf: center joins, then leaves
    FLOS_ASSERT_OK(local.Expand(0).status());
    const LocalId center = local.LocalIndex(0);
    FLOS_ASSERT_OK(local.Expand(center).status());
    ASSERT_EQ(local.Size(), static_cast<uint32_t>(kLeaves + 1));
    const LocalRow row = local.Row(center);
    ASSERT_EQ(row.size(), static_cast<uint32_t>(kLeaves));
    double sum = 0;
    for (uint32_t e = 0; e < row.len; ++e) {
      EXPECT_DOUBLE_EQ(row.weight[e], 1.0 / kLeaves);
      sum += row.weight[e];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_TRUE(local.Exhausted());
    local.Reset();
  }
}

TEST(LocalGraphTest, ProbeDegreeCaches) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  const uint64_t before = accessor.stats().degree_probes;
  EXPECT_DOUBLE_EQ(local.ProbeDegree(7), 3.0);  // paper node 8
  EXPECT_DOUBLE_EQ(local.ProbeDegree(7), 3.0);
  EXPECT_EQ(accessor.stats().degree_probes, before + 1)
      << "second probe must hit the cache";
  // Visited nodes are already cached from their fetch.
  EXPECT_DOUBLE_EQ(local.ProbeDegree(0), 2.0);
  EXPECT_EQ(accessor.stats().degree_probes, before + 1);
}

TEST(LocalGraphTest, RejectsBadIds) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  EXPECT_FALSE(local.Init(100).ok());
  LocalGraph local2(&accessor);
  FLOS_ASSERT_OK(local2.Init(0));
  EXPECT_FALSE(local2.Expand(55).ok());
}

}  // namespace
}  // namespace flos
