// Tests for the LocalGraph visited-set bookkeeping.

#include "core/local_graph.h"

#include <gtest/gtest.h>

#include "graph/accessor.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperExampleGraph;
using testing::ValueOrDie;

TEST(LocalGraphTest, InitAddsQueryOnly) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  EXPECT_EQ(local.Size(), 1u);
  EXPECT_TRUE(local.Contains(0));
  EXPECT_FALSE(local.Contains(1));
  EXPECT_EQ(local.LocalIndex(0), 0u);
  EXPECT_EQ(local.LocalIndex(1), kInvalidLocal);
  EXPECT_EQ(local.GlobalId(0), 0u);
  EXPECT_TRUE(local.IsBoundary(0)) << "query has unvisited neighbors";
  EXPECT_EQ(local.OutsideCount(0), 2u);  // neighbors 2,3 (paper ids)
  EXPECT_DOUBLE_EQ(local.WeightedDegree(0), 2.0);
  EXPECT_FALSE(local.Init(0).ok()) << "double init must fail";
}

TEST(LocalGraphTest, ExpandTracksBoundaryAndRows) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  // Expand the query: S = {1,2,3} in paper ids.
  EXPECT_EQ(ValueOrDie(local.Expand(0)), 2u);
  EXPECT_EQ(local.Size(), 3u);
  EXPECT_FALSE(local.IsBoundary(0)) << "all of q's neighbors visited";
  // Node 2 (paper) has neighbors {1,4}: 4 unvisited.
  const LocalId l2 = local.LocalIndex(1);
  EXPECT_EQ(local.OutsideCount(l2), 1u);
  // Row of node 2 contains only the visited neighbor q with p = 1/2.
  const auto& row = local.Row(l2);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].first, local.LocalIndex(0));
  EXPECT_DOUBLE_EQ(row[0].second, 0.5);
  EXPECT_FALSE(local.Exhausted());
}

TEST(LocalGraphTest, ReverseRowsArePatchedOnJoin) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  FLOS_ASSERT_OK(local.Expand(0).status());
  // Expand node 3 (paper): adds 4 and 5.
  const LocalId l3 = local.LocalIndex(2);
  FLOS_ASSERT_OK(local.Expand(l3).status());
  EXPECT_EQ(local.Size(), 5u);
  // Node 2's row must now also contain node 4 (p = 1/2).
  const auto& row2 = local.Row(local.LocalIndex(1));
  EXPECT_EQ(row2.size(), 2u);
  // Node 4's row has visited neighbors {2,3} with p = 1/4 each.
  const auto& row4 = local.Row(local.LocalIndex(3));
  EXPECT_EQ(row4.size(), 2u);
  for (const auto& [j, p] : row4) {
    (void)j;
    EXPECT_DOUBLE_EQ(p, 0.25);
  }
}

TEST(LocalGraphTest, ExhaustionOnFullVisit) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  while (true) {
    LocalId pick = kInvalidLocal;
    for (LocalId i = 0; i < local.Size(); ++i) {
      if (local.IsBoundary(i)) {
        pick = i;
        break;
      }
    }
    if (pick == kInvalidLocal) break;
    FLOS_ASSERT_OK(local.Expand(pick).status());
  }
  EXPECT_TRUE(local.Exhausted());
  EXPECT_EQ(local.Size(), g.NumNodes());
  for (LocalId i = 0; i < local.Size(); ++i) {
    EXPECT_EQ(local.OutsideCount(i), 0u);
  }
  // Visited count equals accessor fetches.
  EXPECT_EQ(accessor.stats().neighbor_fetches, g.NumNodes());
}

TEST(LocalGraphTest, ProbeDegreeCaches) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(0));
  const uint64_t before = accessor.stats().degree_probes;
  EXPECT_DOUBLE_EQ(local.ProbeDegree(7), 3.0);  // paper node 8
  EXPECT_DOUBLE_EQ(local.ProbeDegree(7), 3.0);
  EXPECT_EQ(accessor.stats().degree_probes, before + 1)
      << "second probe must hit the cache";
  // Visited nodes are already cached from their fetch.
  EXPECT_DOUBLE_EQ(local.ProbeDegree(0), 2.0);
  EXPECT_EQ(accessor.stats().degree_probes, before + 1);
}

TEST(LocalGraphTest, RejectsBadIds) {
  const Graph g = PaperExampleGraph();
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  EXPECT_FALSE(local.Init(100).ok());
  LocalGraph local2(&accessor);
  FLOS_ASSERT_OK(local2.Init(0));
  EXPECT_FALSE(local2.Expand(55).ok());
}

}  // namespace
}  // namespace flos
