// Tests for the invariant-audit layer (util/check.h): failure message
// format and file:line reporting (death tests), the zero-evaluation
// guarantee of disabled FLOS_DCHECK/FLOS_AUDIT tiers, and proof that the
// bound-sandwich audit actually fires on deliberately corrupted bounds.

#include "util/check.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/local_graph.h"
#include "core/unified_bound_engine.h"
#include "graph/accessor.h"
#include "graph/graph.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using ::flos::testing::PaperExampleGraph;

// ---------------------------------------------------------------------------
// FLOS_CHECK failure format. The message must carry the macro name, the
// source location of THIS file, and the failed condition text, so a crash
// in production logs is actionable without a debugger.

TEST(FlosCheckDeathTest, FailureMessageCarriesFileLineAndCondition) {
  const int x = -3;
  EXPECT_DEATH(FLOS_CHECK(x >= 0),
               "FLOS_CHECK failed at .*check_test\\.cc:[0-9]+: x >= 0");
}

TEST(FlosCheckDeathTest, OptionalMessageIsAppended) {
  const bool certified = false;
  EXPECT_DEATH(FLOS_CHECK(certified, "bound lost certification"),
               "FLOS_CHECK failed at .*check_test\\.cc:[0-9]+: "
               "certified: bound lost certification");
}

TEST(FlosCheckDeathTest, ComparisonChecksPrintBothOperands) {
  const double lower = 0.75;
  const double upper = 0.25;
  EXPECT_DEATH(FLOS_CHECK_LE(lower, upper),
               "FLOS_CHECK failed at .*check_test\\.cc:[0-9]+: "
               "lower <= upper \\(0.75 vs 0.25\\)");
}

TEST(FlosCheckTest, PassingChecksAreSilent) {
  FLOS_CHECK(1 + 1 == 2);
  FLOS_CHECK_EQ(4u, 4u);
  FLOS_CHECK_LE(0.1, 0.2, "never printed");
  FLOS_CHECK_GE(7, 7);
  FLOS_CHECK_LT(1, 2);
}

// ---------------------------------------------------------------------------
// Zero-evaluation guarantee: disabled tiers must TYPE-CHECK their operands
// but never evaluate them. Each operand call bumps a counter; the expected
// count depends only on whether the tier is compiled in.

int g_evaluations = 0;

bool CountingPredicate() {
  ++g_evaluations;
  return true;
}

int CountingValue() {
  ++g_evaluations;
  return 1;
}

TEST(FlosCheckTest, CheckAlwaysEvaluatesItsOperandExactlyOnce) {
  g_evaluations = 0;
  FLOS_CHECK(CountingPredicate());
  EXPECT_EQ(g_evaluations, 1);
  g_evaluations = 0;
  FLOS_CHECK_EQ(CountingValue(), 1);
  EXPECT_EQ(g_evaluations, 1);
}

TEST(FlosCheckTest, DcheckOperandsEvaluateOnlyWhenTierIsCompiledIn) {
  g_evaluations = 0;
  FLOS_DCHECK(CountingPredicate());
  FLOS_DCHECK_EQ(CountingValue(), 1);
  FLOS_DCHECK_LE(CountingValue(), 2);
  // In Release (NDEBUG, no audit) the operands must be evaluated ZERO
  // times — the macros reduce to a constant-folded no-op.
  EXPECT_EQ(g_evaluations, kDcheckEnabled ? 3 : 0);
}

TEST(FlosCheckTest, AuditOperandsEvaluateOnlyUnderTheAuditPreset) {
  g_evaluations = 0;
  FLOS_AUDIT(CountingPredicate());
  FLOS_AUDIT_EQ(CountingValue(), 1);
  FLOS_AUDIT_LE(CountingValue(), 2);
  FLOS_AUDIT_GE(CountingValue(), 0);
  EXPECT_EQ(g_evaluations, kAuditEnabled ? 4 : 0);
}

TEST(FlosCheckTest, AuditScopeRunsOnlyUnderTheAuditPreset) {
  int runs = 0;
  FLOS_AUDIT_SCOPE { ++runs; }
  EXPECT_EQ(runs, kAuditEnabled ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Injected corruption: the sandwich audit in UnifiedBoundEngine::FusedSolve
// must catch a bound that was deliberately broken. This is the end-to-end
// proof that the audit layer guards the exactness invariant, not just
// that the macros abort.

struct CorruptionHarness {
  CorruptionHarness() : graph(PaperExampleGraph()), accessor(&graph) {
    local = std::make_unique<LocalGraph>(&accessor);
    EXPECT_TRUE(local->Init(NodeId{0}).ok());
    UnifiedBoundOptions be;
    be.traits.alpha = 0.5;
    engine = std::make_unique<UnifiedBoundEngine>(local.get(), be);
    // Grow S a little so there are real interior/boundary nodes.
    EXPECT_TRUE(local->Expand(0).ok());
    engine->OnGrowth();
    engine->UpdateBounds();
  }

  Graph graph;
  InMemoryAccessor accessor;
  std::unique_ptr<LocalGraph> local;
  std::unique_ptr<UnifiedBoundEngine> engine;
};

#if FLOS_AUDIT_ENABLED

TEST(BoundAuditDeathTest, InjectedSandwichViolationAborts) {
  CorruptionHarness h;
  // lower > upper on a non-query node: certifiably impossible state.
  h.engine->InjectBoundsForTest(1, /*lower_value=*/0.9, /*upper_value=*/0.1);
  EXPECT_DEATH(h.engine->UpdateBounds(),
               "sandwich violated on entry to FusedSolve");
}

TEST(BoundAuditDeathTest, CorruptionIsCaughtOnLaterSolvesToo) {
  CorruptionHarness h;
  // Corrupt, then continue the search as the main loop would: the audit
  // guards every solve, not just the one after the injection.
  h.engine->InjectBoundsForTest(2, /*lower_value=*/1.5, /*upper_value=*/0.0);
  EXPECT_DEATH(
      {
        for (LocalId i = 0; i < h.local->Size(); ++i) {
          if (!h.local->IsBoundary(i)) continue;
          (void)h.local->Expand(i);
          h.engine->OnGrowth();
          h.engine->UpdateBounds();
        }
      },
      "sandwich violated");
}

#else

TEST(BoundAuditTest, CorruptionGoesUndetectedWithoutTheAuditTier) {
  // Documents the cost contract: without FLOS_ENABLE_AUDIT the audit
  // sites compile to nothing, so the same corruption is NOT caught (and
  // the hot path pays nothing). The `audit` preset exists precisely to
  // run the suite with the checks on.
  CorruptionHarness h;
  h.engine->InjectBoundsForTest(1, /*lower_value=*/0.9, /*upper_value=*/0.1);
  h.engine->UpdateBounds();  // must not abort
  SUCCEED();
}

#endif  // FLOS_AUDIT_ENABLED

}  // namespace
}  // namespace flos
