// Robustness tests: error propagation through the search stack (failure
// injection via a faulty accessor) and numerical behaviour under extreme
// edge weights.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dne.h"
#include "baselines/ls_tht.h"
#include "baselines/nn_ei.h"
#include "core/flos.h"
#include "graph/accessor.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

// An accessor that fails CopyNeighbors for one poisoned node: simulates an
// I/O error (torn page, disk failure) surfacing mid-search.
class FaultyAccessor final : public GraphAccessor {
 public:
  FaultyAccessor(const Graph* graph, NodeId poisoned)
      : inner_(graph), poisoned_(poisoned) {}

  uint64_t NumNodes() const override { return inner_.NumNodes(); }
  uint64_t NumEdges() const override { return inner_.NumEdges(); }
  double WeightedDegree(NodeId u) override {
    return inner_.WeightedDegree(u);
  }
  Status CopyNeighbors(NodeId u, std::vector<Neighbor>* out) override {
    if (u == poisoned_) {
      return Status::IoError("injected failure reading node " +
                             std::to_string(u));
    }
    return inner_.CopyNeighbors(u, out);
  }
  const std::vector<NodeId>& DegreeOrder() const override {
    return inner_.DegreeOrder();
  }
  double MaxWeightedDegree() const override {
    return inner_.MaxWeightedDegree();
  }

 private:
  InMemoryAccessor inner_;
  NodeId poisoned_;
};

TEST(FailureInjectionTest, FlosPropagatesIoErrors) {
  const Graph g = RandomConnectedGraph(300, 900, 5);
  // Poison a node adjacent to the query so the search must hit it.
  const NodeId query = 7;
  const NodeId poisoned = g.NeighborIds(query)[0];
  FaultyAccessor accessor(&g, poisoned);
  FlosOptions options;
  const auto result = FlosTopK(&accessor, query, 10, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("injected failure"),
            std::string::npos);
}

TEST(FailureInjectionTest, PoisonedQueryFailsImmediately) {
  const Graph g = RandomConnectedGraph(100, 300, 6);
  FaultyAccessor accessor(&g, 3);
  EXPECT_FALSE(FlosTopK(&accessor, 3, 5, FlosOptions{}).ok());
}

TEST(FailureInjectionTest, LocalBaselinesPropagateIoErrors) {
  const Graph g = RandomConnectedGraph(300, 900, 8);
  const NodeId query = 11;
  const NodeId poisoned = g.NeighborIds(query)[0];
  FaultyAccessor accessor(&g, poisoned);
  EXPECT_FALSE(DneTopK(&accessor, query, 5, DneOptions{}).ok());
  EXPECT_FALSE(NnEiTopK(&accessor, query, 5, NnEiOptions{}).ok());
  EXPECT_FALSE(LsThtTopK(&accessor, query, 5, LsThtOptions{}).ok());
}

TEST(FailureInjectionTest, UnreachedPoisonDoesNotHurt) {
  // Poison a node the local search never needs: query answers normally.
  const Graph g = RandomConnectedGraph(5000, 15000, 9);
  const NodeId query = 0;
  // Pick a far-away node (last in BFS order is a decent heuristic: the
  // highest id not adjacent to the query).
  NodeId far = static_cast<NodeId>(g.NumNodes() - 1);
  while (g.HasEdge(query, far) || far == query) --far;
  FaultyAccessor accessor(&g, far);
  FlosOptions options;
  options.measure = Measure::kPhp;
  const auto result = FlosTopK(&accessor, query, 5, options);
  // The search may legitimately touch `far` on unlucky seeds; accept both
  // outcomes but require a clean status signal either way.
  if (result.ok()) {
    EXPECT_EQ(result->topk.size(), 5u);
    EXPECT_TRUE(result->stats.exact);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  }
}

class ExtremeWeightsTest : public ::testing::TestWithParam<double> {};

TEST_P(ExtremeWeightsTest, FlosStaysExactUnderWeightScaling) {
  // Transition probabilities are scale-invariant, so scaling every weight
  // by 1e-6 .. 1e6 must not change any ranking.
  const double scale = GetParam();
  GraphBuilder builder;
  Rng rng(17);
  const Graph base = RandomConnectedGraph(150, 450, 23);
  for (NodeId u = 0; u < base.NumNodes(); ++u) {
    const auto ids = base.NeighborIds(u);
    const auto ws = base.NeighborWeights(u);
    for (size_t e = 0; e < ids.size(); ++e) {
      if (ids[e] > u) {
        FLOS_ASSERT_OK(builder.AddEdge(u, ids[e], ws[e] * scale));
      }
    }
  }
  const Graph scaled = ValueOrDie(std::move(builder).Build());
  FlosOptions options;
  options.measure = Measure::kPhp;
  const FlosResult r_base = ValueOrDie(FlosTopK(base, 4, 10, options));
  const FlosResult r_scaled = ValueOrDie(FlosTopK(scaled, 4, 10, options));
  ASSERT_EQ(r_base.topk.size(), r_scaled.topk.size());
  for (size_t i = 0; i < r_base.topk.size(); ++i) {
    EXPECT_EQ(r_base.topk[i].node, r_scaled.topk[i].node);
    EXPECT_NEAR(r_base.topk[i].score, r_scaled.topk[i].score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ExtremeWeightsTest,
                         ::testing::Values(1e-6, 1e-3, 1e3, 1e6));

TEST(ExtremeWeightsTest, MixedMagnitudeWeightsStayExact) {
  // Weights spanning 9 orders of magnitude within one graph.
  GraphBuilder builder;
  Rng rng(29);
  for (int u = 0; u + 1 < 60; ++u) {
    FLOS_ASSERT_OK(
        builder.AddEdge(u, u + 1, std::pow(10.0, rng.NextDouble() * 9 - 4)));
    if (u % 3 == 0 && u + 7 < 60) {
      FLOS_ASSERT_OK(builder.AddEdge(
          u, u + 7, std::pow(10.0, rng.NextDouble() * 9 - 4)));
    }
  }
  const Graph g = ValueOrDie(std::move(builder).Build());
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.tolerance = 1e-9;
  const auto exact = ValueOrDie(ExactPhp(g, 0, 0.5));
  const FlosResult r = ValueOrDie(FlosTopK(g, 0, 10, options));
  std::vector<NodeId> nodes;
  for (const auto& s : r.topk) nodes.push_back(s.node);
  testing::ExpectTopKMatchesScores(nodes, exact, 0, 10, Direction::kMaximize,
                                   1e-6);
}

}  // namespace
}  // namespace flos
