// End-to-end coverage of the networked query service over loopback:
// protocol round trips, answer parity with the in-process engine for every
// measure, anytime-deadline semantics (uncertified answers whose bounds
// still sandwich the exact values), admission control under pipelined
// overload, malformed-frame handling, STATS, and remote shutdown.

#include "service/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "measures/exact.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/session_pool.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

Graph TestGraph(uint64_t nodes = 2000, uint64_t seed = 7) {
  GeneratorOptions options;
  options.num_nodes = nodes;
  options.num_edges = nodes * 5;
  options.seed = seed;
  return ValueOrDie(GenerateConnected(options));
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  QueryRequest req;
  req.measure = Measure::kRwr;
  req.query_node = 1234567;
  req.k = 25;
  req.deadline_us = 500;
  req.tht_length = 12;
  req.c = 0.75;
  std::string frame;
  EncodeQueryRequest(req, &frame);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof(len));
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + len);
  const QueryRequest back =
      ValueOrDie(DecodeQueryRequest(frame.substr(kFrameHeaderBytes)));
  EXPECT_EQ(back.measure, Measure::kRwr);
  EXPECT_EQ(back.query_node, 1234567u);
  EXPECT_EQ(back.k, 25u);
  EXPECT_EQ(back.deadline_us, 500u);
  EXPECT_EQ(back.tht_length, 12u);
  EXPECT_DOUBLE_EQ(back.c, 0.75);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  QueryResponse resp;
  resp.type = MessageType::kQuery;
  resp.status = StatusCode::kOk;
  resp.certified = true;
  resp.visited = 321;
  resp.wall_us = 4567;
  resp.topk.push_back({42, 0.5, 0.49, 0.51});
  resp.topk.push_back({7, 0.25, 0.25, 0.25});
  resp.message = "note";
  std::string frame;
  EncodeResponse(resp, &frame);
  const QueryResponse back =
      ValueOrDie(DecodeResponse(frame.substr(kFrameHeaderBytes)));
  EXPECT_EQ(back.status, StatusCode::kOk);
  EXPECT_TRUE(back.certified);
  EXPECT_EQ(back.visited, 321u);
  EXPECT_EQ(back.wall_us, 4567u);
  ASSERT_EQ(back.topk.size(), 2u);
  EXPECT_EQ(back.topk[0].node, 42u);
  EXPECT_DOUBLE_EQ(back.topk[0].score, 0.5);
  EXPECT_EQ(back.message, "note");
}

TEST(ProtocolTest, RejectsMalformedPayloads) {
  EXPECT_FALSE(DecodeQueryRequest("").ok());
  EXPECT_FALSE(DecodeQueryRequest("\x01short").ok());
  EXPECT_FALSE(PeekMessageType(std::string(1, '\x09')).ok());
  // Valid QUERY with trailing junk must be rejected, not silently read.
  QueryRequest req;
  std::string frame;
  EncodeQueryRequest(req, &frame);
  std::string payload = frame.substr(kFrameHeaderBytes) + "junk";
  EXPECT_FALSE(DecodeQueryRequest(payload).ok());
}

class ServiceTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    graph_ = TestGraph();
    server_ = std::make_unique<ServiceServer>(&graph_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  ServiceClient Connect() {
    return ValueOrDie(ServiceClient::Connect("127.0.0.1", server_->port()));
  }

  Graph graph_;
  std::unique_ptr<ServiceServer> server_;
};

TEST_F(ServiceTest, MatchesInProcessEngineForEveryMeasure) {
  // Bit-parity with a cold in-process run needs the warm-subgraph tier
  // off: measures sharing a fixed point would otherwise resume from the
  // first measure's converged bounds and certify the same set with
  // slightly different interval midpoints (tests/subgraph_cache_test.cc
  // covers that path against ground truth).
  ServerOptions cold;
  cold.subgraph_cache_capacity = 0;
  StartServer(cold);
  ServiceClient client = Connect();
  for (const Measure measure : {Measure::kPhp, Measure::kEi, Measure::kDht,
                                Measure::kTht, Measure::kRwr}) {
    QueryRequest req;
    req.measure = measure;
    req.query_node = 17;
    req.k = 10;
    const QueryResponse resp = ValueOrDie(client.Query(req));
    ASSERT_EQ(resp.status, StatusCode::kOk)
        << MeasureName(measure) << ": " << resp.message;
    EXPECT_TRUE(resp.certified) << MeasureName(measure);

    FlosOptions opts;
    opts.measure = measure;
    const FlosResult local =
        ValueOrDie(FlosTopK(graph_, 17, 10, opts));
    ASSERT_EQ(resp.topk.size(), local.topk.size()) << MeasureName(measure);
    for (size_t i = 0; i < local.topk.size(); ++i) {
      EXPECT_EQ(resp.topk[i].node, local.topk[i].node)
          << MeasureName(measure) << " rank " << i;
      EXPECT_DOUBLE_EQ(resp.topk[i].score, local.topk[i].score)
          << MeasureName(measure) << " rank " << i;
    }

    // And against whole-graph ground truth, closing the loop client ->
    // wire -> worker -> unified engine -> exact solver.
    MeasureParams params;
    const std::vector<double> exact = ValueOrDie(
        ExactMeasure(graph_, 17, measure, params));
    std::vector<NodeId> returned;
    for (const ResponseEntry& e : resp.topk) {
      returned.push_back(static_cast<NodeId>(e.node));
    }
    flos::testing::ExpectTopKMatchesScores(returned, exact, 17, 10,
                                           MeasureDirection(measure));
  }
}

TEST_F(ServiceTest, RepeatQueryIsServedFromTheCertifiedCache) {
  StartServer();  // default options: query cache enabled
  ServiceClient client = Connect();
  QueryRequest req;
  req.measure = Measure::kRwr;
  req.query_node = 23;
  req.k = 10;
  const QueryResponse first = ValueOrDie(client.Query(req));
  ASSERT_EQ(first.status, StatusCode::kOk) << first.message;
  ASSERT_TRUE(first.certified);
  EXPECT_FALSE(first.cache_hit);

  const QueryResponse second = ValueOrDie(client.Query(req));
  ASSERT_EQ(second.status, StatusCode::kOk) << second.message;
  EXPECT_TRUE(second.cache_hit) << "identical repeat query must hit";
  EXPECT_TRUE(second.certified) << "cache hits are certified by admission";
  ASSERT_EQ(second.topk.size(), first.topk.size());
  for (size_t i = 0; i < first.topk.size(); ++i) {
    EXPECT_EQ(second.topk[i].node, first.topk[i].node);
    EXPECT_DOUBLE_EQ(second.topk[i].score, first.topk[i].score);
    EXPECT_DOUBLE_EQ(second.topk[i].lower, first.topk[i].lower);
    EXPECT_DOUBLE_EQ(second.topk[i].upper, first.topk[i].upper);
  }
  EXPECT_EQ(server_->metrics().cache_hits.value(), 1u);
  EXPECT_EQ(server_->metrics().cache_misses.value(), 1u);

  // Different parameters must not hit.
  req.k = 5;
  const QueryResponse third = ValueOrDie(client.Query(req));
  ASSERT_EQ(third.status, StatusCode::kOk);
  EXPECT_FALSE(third.cache_hit) << "k is part of the cache key";

  // The cache shows up in STATS: raw counters plus the derived ratio.
  const QueryResponse stats = ValueOrDie(client.Stats());
  EXPECT_NE(stats.message.find("counter cache_hits 1"), std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("ratio certified_ratio"), std::string::npos)
      << stats.message;
}

TEST_F(ServiceTest, RepeatSeedResumesFromTheWarmSubgraphTier) {
  StartServer();  // default options: both cache tiers enabled
  ServiceClient client = Connect();
  QueryRequest req;
  req.measure = Measure::kPhp;
  req.query_node = 23;
  req.k = 10;
  const QueryResponse first = ValueOrDie(client.Query(req));
  ASSERT_EQ(first.status, StatusCode::kOk) << first.message;
  ASSERT_TRUE(first.certified);
  EXPECT_FALSE(first.subgraph_hit) << "cold seed cannot be warm";

  // Same seed, different k: misses the result cache (k is in its key)
  // but resumes from the warm subgraph — and the wire flag says so.
  req.k = 5;
  const QueryResponse second = ValueOrDie(client.Query(req));
  ASSERT_EQ(second.status, StatusCode::kOk) << second.message;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.subgraph_hit)
      << "repeat seed must resume from the warm-subgraph tier";
  EXPECT_TRUE(second.certified);
  EXPECT_EQ(server_->metrics().subgraph_hits.value(), 1u);
  EXPECT_EQ(server_->metrics().subgraph_misses.value(), 1u);

  // A result-cache hit reports only cache_hit: the stored answer is
  // returned outright, no search resumed, and neither subgraph counter
  // moves.
  const QueryResponse third = ValueOrDie(client.Query(req));
  ASSERT_EQ(third.status, StatusCode::kOk);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_FALSE(third.subgraph_hit);
  EXPECT_EQ(server_->metrics().subgraph_hits.value(), 1u);
  EXPECT_EQ(server_->metrics().subgraph_misses.value(), 1u);

  const QueryResponse stats = ValueOrDie(client.Stats());
  EXPECT_NE(stats.message.find("counter subgraph_hits 1"), std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("ratio subgraph_hit_ratio"),
            std::string::npos)
      << stats.message;
}

TEST_F(ServiceTest, QueryCacheCanBeDisabled) {
  ServerOptions options;
  options.query_cache_capacity = 0;
  StartServer(options);
  ServiceClient client = Connect();
  QueryRequest req;
  req.query_node = 23;
  req.k = 10;
  for (int round = 0; round < 2; ++round) {
    const QueryResponse resp = ValueOrDie(client.Query(req));
    ASSERT_EQ(resp.status, StatusCode::kOk);
    EXPECT_FALSE(resp.cache_hit) << "round " << round;
  }
  EXPECT_EQ(server_->metrics().cache_hits.value(), 0u);
  EXPECT_EQ(server_->metrics().cache_misses.value(), 0u)
      << "with the cache disabled neither counter may move";
}

TEST_F(ServiceTest, UncertifiedAnswersAreNeverCached) {
  StartServer();
  ServiceClient client = Connect();
  QueryRequest req;
  req.measure = Measure::kPhp;
  req.query_node = 3;
  req.k = 10;
  req.deadline_us = 1;  // expires mid-search: uncertified anytime answer
  const QueryResponse cut = ValueOrDie(client.Query(req));
  ASSERT_EQ(cut.status, StatusCode::kOk);
  ASSERT_FALSE(cut.certified);
  EXPECT_FALSE(cut.cache_hit);

  // The same query without a deadline must run the real search (no stale
  // uncertified entry to hit) and come back certified.
  req.deadline_us = 0;
  const QueryResponse full = ValueOrDie(client.Query(req));
  ASSERT_EQ(full.status, StatusCode::kOk);
  EXPECT_TRUE(full.certified);
  EXPECT_FALSE(full.cache_hit)
      << "an uncertified answer must not have been admitted to the cache";
}

TEST_F(ServiceTest, DeadlineExpiryReturnsRigorousUncertifiedBounds) {
  StartServer();
  ServiceClient client = Connect();
  QueryRequest req;
  req.measure = Measure::kPhp;
  req.query_node = 3;
  req.k = 10;
  req.deadline_us = 1;  // expires during the first expansion
  const QueryResponse resp = ValueOrDie(client.Query(req));
  ASSERT_EQ(resp.status, StatusCode::kOk) << resp.message;
  EXPECT_FALSE(resp.certified)
      << "a 1us deadline cannot certify a 2000-node query";
  ASSERT_FALSE(resp.topk.empty())
      << "anytime answers must include the partial top-k";

  // The paper's guarantee: even a cut-short answer carries bounds that
  // sandwich the exact proximity of every returned node.
  const std::vector<double> exact =
      ValueOrDie(ExactPhp(graph_, 3, 0.5));
  for (const ResponseEntry& e : resp.topk) {
    ASSERT_LT(e.node, exact.size());
    EXPECT_LE(e.lower, exact[e.node] + 1e-9)
        << "node " << e.node << " lower bound not rigorous";
    EXPECT_GE(e.upper, exact[e.node] - 1e-9)
        << "node " << e.node << " upper bound not rigorous";
    EXPECT_LE(e.lower, e.upper);
  }
  EXPECT_GE(server_->metrics().deadline_expiries.value(), 1u);
}

TEST_F(ServiceTest, OverloadRejectsBeyondBoundedQueue) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 2;
  StartServer(options);
  ServiceClient client = Connect();

  // Pipeline far more expensive (certified, no deadline) queries than the
  // queue admits. Responses are unordered; count statuses.
  const int kBurst = 40;
  for (int i = 0; i < kBurst; ++i) {
    QueryRequest req;
    req.measure = Measure::kPhp;
    req.query_node = static_cast<NodeId>(i % 100);
    req.k = 20;
    std::string frame;
    EncodeQueryRequest(req, &frame);
    ASSERT_TRUE(client.SendFrame(frame).ok());
  }
  int ok = 0, overloaded = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    const QueryResponse resp = ValueOrDie(client.ReceiveResponse());
    if (resp.status == StatusCode::kOk) {
      ++ok;
    } else if (resp.status == StatusCode::kOverloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(other, 0);
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GT(overloaded, 0) << "burst of 40 must overflow a queue of 2";
  EXPECT_GT(ok, 0) << "admitted queries must still be answered";
  // The bounded-queue invariant, observed rather than assumed.
  EXPECT_LE(server_->metrics().queue_depth.max_value(), 2);
  EXPECT_EQ(
      server_->metrics().requests_rejected_overload.value(),
      static_cast<uint64_t>(overloaded));
}

TEST_F(ServiceTest, MalformedFramesGetErrorResponses) {
  StartServer();
  ServiceClient client = Connect();

  // Unknown message type: framing intact, so the server answers and keeps
  // the connection.
  std::string bogus;
  const uint32_t len = 1;
  bogus.append(reinterpret_cast<const char*>(&len), sizeof(len));
  bogus.push_back('\x09');
  ASSERT_TRUE(client.SendFrame(bogus).ok());
  QueryResponse resp = ValueOrDie(client.ReceiveResponse());
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);

  // Truncated QUERY payload: decoded (and rejected) by the worker.
  std::string stub;
  const uint32_t stub_len = 3;
  stub.append(reinterpret_cast<const char*>(&stub_len), sizeof(stub_len));
  stub.push_back(static_cast<char>(MessageType::kQuery));
  stub.append("ab");
  ASSERT_TRUE(client.SendFrame(stub).ok());
  resp = ValueOrDie(client.ReceiveResponse());
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);

  // The connection survived both: a well-formed query still works.
  QueryRequest req;
  req.query_node = 1;
  req.k = 5;
  resp = ValueOrDie(client.Query(req));
  EXPECT_EQ(resp.status, StatusCode::kOk) << resp.message;
  EXPECT_GE(server_->metrics().requests_malformed.value(), 2u);
}

TEST_F(ServiceTest, InvalidQueryParametersAreRejected) {
  StartServer();
  ServiceClient client = Connect();
  QueryRequest req;
  req.query_node = static_cast<NodeId>(graph_.NumNodes() + 5);
  req.k = 10;
  QueryResponse resp = ValueOrDie(client.Query(req));
  EXPECT_NE(resp.status, StatusCode::kOk) << "out-of-range node must fail";
  req.query_node = 1;
  req.k = 0;
  resp = ValueOrDie(client.Query(req));
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
  req.k = 10;
  req.c = 1.5;
  resp = ValueOrDie(client.Query(req));
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, StatsReportsServingCounters) {
  StartServer();
  ServiceClient client = Connect();
  QueryRequest req;
  req.query_node = 2;
  req.k = 5;
  ASSERT_EQ(ValueOrDie(client.Query(req)).status, StatusCode::kOk);
  const QueryResponse stats = ValueOrDie(client.Stats());
  EXPECT_EQ(stats.type, MessageType::kStats);
  EXPECT_EQ(stats.status, StatusCode::kOk);
  EXPECT_NE(stats.message.find("counter queries_ok 1"), std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("hist serve_us count 1"), std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("gauge active_connections"),
            std::string::npos)
      << stats.message;
}

TEST_F(ServiceTest, RemoteShutdownUnblocksWait) {
  StartServer();
  ServiceClient client = Connect();
  const QueryResponse ack = ValueOrDie(client.Shutdown());
  EXPECT_EQ(ack.type, MessageType::kShutdown);
  EXPECT_EQ(ack.status, StatusCode::kOk);
  server_->WaitForShutdown();  // must return promptly, not hang
  server_->Shutdown();
}

TEST_F(ServiceTest, RemoteShutdownCanBeDisabled) {
  ServerOptions options;
  options.allow_remote_shutdown = false;
  StartServer(options);
  ServiceClient client = Connect();
  const QueryResponse ack = ValueOrDie(client.Shutdown());
  EXPECT_EQ(ack.status, StatusCode::kFailedPrecondition);
}

TEST(SessionPoolTest, LeasesAreExclusiveAndRecycled) {
  const Graph graph = TestGraph(200, 3);
  EngineSessionPool pool(&graph, 2);
  EXPECT_EQ(pool.capacity(), 2u);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  ASSERT_NE(a.engine(), nullptr);
  ASSERT_NE(b.engine(), nullptr);
  EXPECT_NE(a.engine(), b.engine());
  FlosEngine* const first = a.engine();
  a.Release();
  auto c = pool.Acquire();
  EXPECT_EQ(c.engine(), first) << "released session must be reused";
  pool.Shutdown();
  auto after = pool.Acquire();
  EXPECT_EQ(after.engine(), nullptr);
}

}  // namespace
}  // namespace flos
