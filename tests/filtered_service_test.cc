// Filtered top-k over the wire: loopback exactness parity for every
// measure x predicate type, protocol-version skew rejection (a v1 frame
// must fail cleanly, not misparse), predicate-without-label-store
// rejection, and the filtered metrics split (filtered_* counters and
// per-type histograms move; the unfiltered certified counters do not).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "graph/generators.h"
#include "graph/labels.h"
#include "measures/exact.h"
#include "measures/measure.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

constexpr double kTol = 2e-5;

LabelPredicate MakeOrDie(PredicateType type, std::vector<LabelId> labels) {
  return ValueOrDie(LabelPredicate::Make(type, std::move(labels)));
}

class FilteredServiceTest : public ::testing::Test {
 protected:
  /// Starts a labeled server. Labels: 6-label universe, 2 uniform labels
  /// per node, so every predicate type has plenty of matches.
  void StartServer(ServerOptions options = {}, uint64_t nodes = 1500) {
    GeneratorOptions gen;
    gen.num_nodes = nodes;
    gen.num_edges = nodes * 5;
    gen.seed = 7;
    graph_ = ValueOrDie(GenerateConnected(gen));
    LabelGenOptions lgen;
    lgen.num_nodes = graph_.NumNodes();
    lgen.num_labels = 6;
    lgen.labels_per_node = 2;
    lgen.seed = 11;
    labels_ = ValueOrDie(GenerateUniformLabels(lgen));
    options.labels = &labels_;
    server_ = std::make_unique<ServiceServer>(&graph_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  ServiceClient Connect() {
    return ValueOrDie(ServiceClient::Connect("127.0.0.1", server_->port()));
  }

  Graph graph_;
  LabelStore labels_;
  std::unique_ptr<ServiceServer> server_;
};

TEST_F(FilteredServiceTest, FilteredParityForEveryMeasureAndPredicateType) {
  // Caches off: each (measure, predicate) combination must be solved from
  // scratch so parity covers the filtered search itself.
  ServerOptions cold;
  cold.query_cache_capacity = 0;
  cold.subgraph_cache_capacity = 0;
  StartServer(cold);
  ServiceClient client = Connect();
  const std::vector<LabelPredicate> predicates = {
      MakeOrDie(PredicateType::kEquality, {0, 2}),
      MakeOrDie(PredicateType::kContainment, {1}),
      MakeOrDie(PredicateType::kOverlap, {3, 4}),
  };
  const NodeId query = 17;
  const int k = 10;
  for (const Measure measure : {Measure::kPhp, Measure::kEi, Measure::kDht,
                                Measure::kTht, Measure::kRwr}) {
    MeasureParams params;
    const std::vector<double> exact =
        ValueOrDie(ExactMeasure(graph_, query, measure, params));
    const Direction direction = MeasureDirection(measure);
    for (const LabelPredicate& predicate : predicates) {
      QueryRequest req;
      req.measure = measure;
      req.query_node = query;
      req.k = k;
      req.predicate = predicate;
      const QueryResponse resp = ValueOrDie(client.Query(req));
      ASSERT_EQ(resp.status, StatusCode::kOk)
          << MeasureName(measure) << " " << predicate.ToString() << ": "
          << resp.message;
      EXPECT_TRUE(resp.certified)
          << MeasureName(measure) << " " << predicate.ToString();

      // Ground truth: the k best matching exact scores.
      std::vector<double> best;
      for (NodeId v = 0; v < static_cast<NodeId>(exact.size()); ++v) {
        if (v == query) continue;
        if (!predicate.Matches(labels_.Labels(v))) continue;
        best.push_back(exact[v]);
      }
      std::sort(best.begin(), best.end(),
                [direction](double a, double b) {
                  return IsCloser(direction, a, b);
                });
      const size_t expect_n =
          std::min<size_t>(static_cast<size_t>(k), best.size());
      ASSERT_EQ(resp.topk.size(), expect_n)
          << MeasureName(measure) << " " << predicate.ToString();
      // Certification proves SET membership; order within the set is
      // only resolved up to interval overlap — compare sorted.
      std::vector<double> returned;
      for (size_t i = 0; i < resp.topk.size(); ++i) {
        const NodeId node = static_cast<NodeId>(resp.topk[i].node);
        EXPECT_NE(node, query);
        EXPECT_TRUE(predicate.Matches(labels_.Labels(node)))
            << "node " << node << " violates " << predicate.ToString();
        returned.push_back(exact[node]);
      }
      std::sort(returned.begin(), returned.end(),
                [direction](double a, double b) {
                  return IsCloser(direction, a, b);
                });
      for (size_t i = 0; i < returned.size(); ++i) {
        EXPECT_NEAR(returned[i], best[i], kTol)
            << MeasureName(measure) << " " << predicate.ToString()
            << " rank " << i;
      }
    }
  }
}

TEST_F(FilteredServiceTest, FewerMatchesThanKOverTheWire) {
  ServerOptions cold;
  cold.query_cache_capacity = 0;
  cold.subgraph_cache_capacity = 0;
  StartServer(cold);
  ServiceClient client = Connect();
  // Equality on the full 2-label sets keeps the match population small;
  // find a predicate with fewer matches than k by probing the store.
  const LabelPredicate predicate =
      MakeOrDie(PredicateType::kEquality, {0, 1});
  uint64_t matches = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(graph_.NumNodes()); ++v) {
    if (v == 17) continue;
    if (predicate.Matches(labels_.Labels(v))) ++matches;
  }
  QueryRequest req;
  req.query_node = 17;
  req.k = static_cast<uint32_t>(matches + 5);
  req.predicate = predicate;
  const QueryResponse resp = ValueOrDie(client.Query(req));
  ASSERT_EQ(resp.status, StatusCode::kOk) << resp.message;
  EXPECT_TRUE(resp.certified)
      << "k beyond the match count must still certify";
  EXPECT_EQ(resp.topk.size(), matches);
}

TEST_F(FilteredServiceTest, VersionSkewIsRejectedCleanly) {
  StartServer();
  ServiceClient client = Connect();

  // Hand-craft a protocol-v1 QUERY frame: the two bytes where v2 carries
  // (version, predicate_type) were a zero u16 reserved field, so the
  // frame below decodes as version 0 and must be rejected by the version
  // check — not misread as a filtered query.
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kQuery));
  payload.push_back(0);                      // measure = PHP
  payload.push_back(0);                      // v1: reserved lo
  payload.push_back(0);                      // v1: reserved hi
  const uint32_t k = 10;
  const uint32_t flags = 0;
  const uint32_t tht_length = 10;
  const uint64_t query_node = 17;
  const uint64_t deadline_us = 0;
  const double c = 0.5;
  payload.append(reinterpret_cast<const char*>(&k), sizeof(k));
  payload.append(reinterpret_cast<const char*>(&flags), sizeof(flags));
  payload.append(reinterpret_cast<const char*>(&tht_length),
                 sizeof(tht_length));
  payload.append(reinterpret_cast<const char*>(&query_node),
                 sizeof(query_node));
  payload.append(reinterpret_cast<const char*>(&deadline_us),
                 sizeof(deadline_us));
  payload.append(reinterpret_cast<const char*>(&c), sizeof(c));
  std::string frame;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(payload);

  ASSERT_TRUE(client.SendFrame(frame).ok());
  QueryResponse resp = ValueOrDie(client.ReceiveResponse());
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("protocol version mismatch"),
            std::string::npos)
      << "skew must be named, not reported as a generic parse error: "
      << resp.message;

  // The connection survived: a well-formed v2 query still works.
  QueryRequest req;
  req.query_node = 17;
  req.k = 5;
  resp = ValueOrDie(client.Query(req));
  EXPECT_EQ(resp.status, StatusCode::kOk) << resp.message;
}

TEST(FilteredServiceNoLabelsTest, PredicateWithoutLabelStoreIsRejected) {
  GeneratorOptions gen;
  gen.num_nodes = 500;
  gen.num_edges = 2500;
  gen.seed = 7;
  Graph graph = ValueOrDie(GenerateConnected(gen));
  ServiceServer server(&graph, {});  // no label store
  ASSERT_TRUE(server.Start().ok());
  ServiceClient client =
      ValueOrDie(ServiceClient::Connect("127.0.0.1", server.port()));
  QueryRequest req;
  req.query_node = 3;
  req.k = 5;
  req.predicate = MakeOrDie(PredicateType::kOverlap, {0});
  const QueryResponse resp = ValueOrDie(client.Query(req));
  EXPECT_EQ(resp.status, StatusCode::kInvalidArgument) << resp.message;
  EXPECT_NE(resp.message.find("no label store"), std::string::npos)
      << resp.message;

  // Unfiltered queries on the same connection still serve.
  req.predicate = LabelPredicate();
  const QueryResponse plain = ValueOrDie(client.Query(req));
  EXPECT_EQ(plain.status, StatusCode::kOk) << plain.message;
}

TEST_F(FilteredServiceTest, FilteredMetricsAreSeparatedFromUnfiltered) {
  StartServer();
  ServiceClient client = Connect();

  // One unfiltered + three filtered queries (one per predicate type).
  QueryRequest req;
  req.query_node = 23;
  req.k = 5;
  ASSERT_EQ(ValueOrDie(client.Query(req)).status, StatusCode::kOk);
  req.predicate = MakeOrDie(PredicateType::kEquality, {0, 2});
  ASSERT_EQ(ValueOrDie(client.Query(req)).status, StatusCode::kOk);
  req.predicate = MakeOrDie(PredicateType::kContainment, {1});
  ASSERT_EQ(ValueOrDie(client.Query(req)).status, StatusCode::kOk);
  req.predicate = MakeOrDie(PredicateType::kOverlap, {3, 4});
  ASSERT_EQ(ValueOrDie(client.Query(req)).status, StatusCode::kOk);

  const ServiceMetrics& metrics = server_->metrics();
  EXPECT_EQ(metrics.filtered_queries.value(), 3u);
  EXPECT_EQ(metrics.filtered_certified.value() +
                metrics.filtered_uncertified.value(),
            3u);
  // The headline certified counters describe the UNFILTERED workload
  // only: exactly the one plain query above.
  EXPECT_EQ(metrics.queries_certified.value() +
                metrics.queries_uncertified.value(),
            1u);
  // Per-predicate-type latency histograms got one sample each.
  EXPECT_EQ(metrics.filtered_eq_us.count(), 1u);
  EXPECT_EQ(metrics.filtered_contain_us.count(), 1u);
  EXPECT_EQ(metrics.filtered_overlap_us.count(), 1u);

  // And STATS exposes the split, including the derived filtered ratio.
  const QueryResponse stats = ValueOrDie(client.Stats());
  EXPECT_NE(stats.message.find("counter filtered_queries 3"),
            std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("ratio filtered_certified_ratio"),
            std::string::npos)
      << stats.message;
}

}  // namespace
}  // namespace flos
