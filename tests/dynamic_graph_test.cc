// Tests for the updatable DynamicGraph: merged views, online degree
// maintenance, equivalence with rebuilt static graphs, and FLoS answering
// correctly immediately after updates (the paper's no-preprocessing
// motivation).

#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include "core/flos.h"
#include "measures/exact.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(DynamicGraphTest, StartsEqualToBase) {
  const Graph base = RandomConnectedGraph(100, 300, 3);
  DynamicGraph dyn{Graph(base)};
  EXPECT_EQ(dyn.NumNodes(), base.NumNodes());
  EXPECT_EQ(dyn.NumEdges(), base.NumEdges());
  EXPECT_EQ(dyn.delta_edges(), 0u);
  std::vector<Neighbor> got;
  InMemoryAccessor mem(&base);
  std::vector<Neighbor> expected;
  for (NodeId u = 0; u < base.NumNodes(); ++u) {
    FLOS_ASSERT_OK(dyn.CopyNeighbors(u, &got));
    FLOS_ASSERT_OK(mem.CopyNeighbors(u, &expected));
    ASSERT_EQ(got, expected) << "node " << u;
    EXPECT_DOUBLE_EQ(dyn.WeightedDegree(u), base.WeightedDegree(u));
  }
  EXPECT_EQ(dyn.DegreeOrder(), base.DegreeOrder());
}

TEST(DynamicGraphTest, InsertionsMergeAndAccumulate) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 1.0));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2, 2.0));
  DynamicGraph dyn{ValueOrDie(std::move(builder).Build())};
  // New edge.
  FLOS_ASSERT_OK(dyn.AddEdge(0, 2, 3.0));
  EXPECT_EQ(dyn.NumEdges(), 3u);
  // Weight increment on a base edge: edge count unchanged.
  FLOS_ASSERT_OK(dyn.AddEdge(0, 1, 0.5));
  EXPECT_EQ(dyn.NumEdges(), 3u);
  std::vector<Neighbor> nbs;
  FLOS_ASSERT_OK(dyn.CopyNeighbors(0, &nbs));
  ASSERT_EQ(nbs.size(), 2u);
  EXPECT_EQ(nbs[0].id, 1u);
  EXPECT_DOUBLE_EQ(nbs[0].weight, 1.5);
  EXPECT_EQ(nbs[1].id, 2u);
  EXPECT_DOUBLE_EQ(nbs[1].weight, 3.0);
  EXPECT_DOUBLE_EQ(dyn.WeightedDegree(0), 4.5);
  // Increment on a delta edge.
  FLOS_ASSERT_OK(dyn.AddEdge(2, 0, 1.0));
  FLOS_ASSERT_OK(dyn.CopyNeighbors(0, &nbs));
  EXPECT_DOUBLE_EQ(nbs[1].weight, 4.0);
  EXPECT_EQ(dyn.NumEdges(), 3u);
}

TEST(DynamicGraphTest, RejectsBadInsertions) {
  DynamicGraph dyn{testing::RandomConnectedGraph(10, 15, 1)};
  EXPECT_FALSE(dyn.AddEdge(0, 0).ok());
  EXPECT_FALSE(dyn.AddEdge(0, 99).ok());
  EXPECT_FALSE(dyn.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(dyn.AddEdge(0, 1, -2.0).ok());
}

TEST(DynamicGraphTest, AddNodeGrowsIdSpace) {
  DynamicGraph dyn{testing::RandomConnectedGraph(10, 15, 2)};
  const NodeId fresh = dyn.AddNode();
  EXPECT_EQ(fresh, 10u);
  EXPECT_EQ(dyn.NumNodes(), 11u);
  EXPECT_DOUBLE_EQ(dyn.WeightedDegree(fresh), 0.0);
  FLOS_ASSERT_OK(dyn.AddEdge(fresh, 3, 2.0));
  std::vector<Neighbor> nbs;
  FLOS_ASSERT_OK(dyn.CopyNeighbors(fresh, &nbs));
  ASSERT_EQ(nbs.size(), 1u);
  EXPECT_EQ(nbs[0].id, 3u);
}

TEST(DynamicGraphTest, RandomUpdatesMatchRebuiltStaticGraph) {
  const Graph base = RandomConnectedGraph(150, 300, 5);
  DynamicGraph dyn{Graph(base)};
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
    if (u == v) continue;
    FLOS_ASSERT_OK(dyn.AddEdge(u, v, 0.25 + rng.NextDouble()));
  }
  const Graph snapshot = ValueOrDie(dyn.Snapshot());
  InMemoryAccessor mem(&snapshot);
  std::vector<Neighbor> got;
  std::vector<Neighbor> expected;
  for (NodeId u = 0; u < dyn.NumNodes(); ++u) {
    FLOS_ASSERT_OK(dyn.CopyNeighbors(u, &got));
    FLOS_ASSERT_OK(mem.CopyNeighbors(u, &expected));
    ASSERT_EQ(got.size(), expected.size()) << "node " << u;
    for (size_t e = 0; e < got.size(); ++e) {
      EXPECT_EQ(got[e].id, expected[e].id);
      EXPECT_NEAR(got[e].weight, expected[e].weight, 1e-12);
    }
    EXPECT_NEAR(dyn.WeightedDegree(u), snapshot.WeightedDegree(u), 1e-9);
  }
  EXPECT_EQ(dyn.DegreeOrder(), snapshot.DegreeOrder());
  EXPECT_NEAR(dyn.MaxWeightedDegree(), snapshot.MaxWeightedDegree(), 1e-9);
}

TEST(DynamicGraphTest, CompactPreservesTheView) {
  const Graph base = RandomConnectedGraph(80, 160, 7);
  DynamicGraph dyn{Graph(base)};
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const auto u = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
    const auto v = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
    if (u != v) FLOS_ASSERT_OK(dyn.AddEdge(u, v, 1.0));
  }
  const Graph before = ValueOrDie(dyn.Snapshot());
  const uint64_t edges_before = dyn.NumEdges();
  FLOS_ASSERT_OK(dyn.Compact());
  EXPECT_EQ(dyn.delta_edges(), 0u);
  EXPECT_EQ(dyn.NumEdges(), edges_before);
  const Graph after = ValueOrDie(dyn.Snapshot());
  EXPECT_EQ(before.neighbors(), after.neighbors());
}

TEST(DynamicGraphTest, FlosIsCorrectImmediatelyAfterUpdates) {
  // The paper's motivating property: no index to invalidate. Insert edges,
  // query at once, and check against ground truth on a fresh snapshot.
  const Graph base = RandomConnectedGraph(250, 600, 13);
  DynamicGraph dyn{Graph(base)};
  Rng rng(17);
  FlosOptions options;
  options.measure = Measure::kPhp;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 30; ++i) {
      const auto u = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
      const auto v = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
      if (u != v) FLOS_ASSERT_OK(dyn.AddEdge(u, v, 0.5 + rng.NextDouble()));
    }
    const auto query = static_cast<NodeId>(rng.NextBounded(dyn.NumNodes()));
    const FlosResult result = ValueOrDie(FlosTopK(&dyn, query, 8, options));
    EXPECT_TRUE(result.stats.exact);
    const Graph snapshot = ValueOrDie(dyn.Snapshot());
    const auto exact = ValueOrDie(ExactPhp(snapshot, query, 0.5));
    std::vector<NodeId> nodes;
    for (const auto& s : result.topk) nodes.push_back(s.node);
    testing::ExpectTopKMatchesScores(nodes, exact, query, 8,
                                     Direction::kMaximize, 1e-6);
  }
}

}  // namespace
}  // namespace flos
