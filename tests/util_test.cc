// Unit tests for the utility substrate: Status/Result, Rng, FlagParser,
// TablePrinter.

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace flos {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kResourceExhausted, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "unknown");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  FLOS_ASSIGN_OR_RETURN(const int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  // Rough uniformity: all 17 residues appear.
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(17));
  EXPECT_EQ(seen.size(), 17u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, SampleDistinctIsDistinctAndComplete) {
  Rng rng(11);
  const auto sparse = rng.SampleDistinct(1000, 10);
  EXPECT_EQ(std::set<uint64_t>(sparse.begin(), sparse.end()).size(), 10u);
  const auto dense = rng.SampleDistinct(20, 20);
  EXPECT_EQ(std::set<uint64_t>(dense.begin(), dense.end()).size(), 20u);
  for (const uint64_t v : dense) EXPECT_LT(v, 20u);
}

TEST(FlagParserTest, ParsesAllTypesAndForms) {
  FlagParser flags;
  int64_t k = 20;
  double c = 0.5;
  bool verbose = false;
  bool fancy = true;
  std::string name = "default";
  flags.AddInt("k", &k, "k");
  flags.AddDouble("c", &c, "c");
  flags.AddBool("verbose", &verbose, "v");
  flags.AddBool("fancy", &fancy, "f");
  flags.AddString("name", &name, "n");
  const char* argv[] = {"prog",      "--k=40",   "--c", "0.8", "--verbose",
                        "--no-fancy", "--name=x", "pos"};
  FLOS_ASSERT_OK(flags.Parse(8, const_cast<char**>(argv)));
  EXPECT_EQ(k, 40);
  EXPECT_DOUBLE_EQ(c, 0.8);
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(fancy);
  EXPECT_EQ(name, "x");
  ASSERT_EQ(flags.positional_args().size(), 1u);
  EXPECT_EQ(flags.positional_args()[0], "pos");
}

TEST(FlagParserTest, RejectsUnknownAndMalformed) {
  FlagParser flags;
  int64_t k = 1;
  flags.AddInt("k", &k, "k");
  {
    const char* argv[] = {"prog", "--unknown=1"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"prog", "--k=abc"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"prog", "--k"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
}

TEST(TablePrinterTest, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.5), "0.5");
  EXPECT_EQ(TablePrinter::FormatDouble(1234.5678, 6), "1234.57");
}

TEST(TablePrinterTest, CsvMode) {
  TablePrinter t(/*csv=*/true);
  t.AddRow({"a", "b"});
  t.AddRow({"1", "2"});
  char buf[256] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.Print(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "a,b\n1,2\n");
}

TEST(TablePrinterTest, AlignedMode) {
  TablePrinter t;
  t.AddRow({"long-header", "x"});
  t.AddRow({"a", "y"});
  char buf[256] = {};
  std::FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.Print(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "long-header  x\na            y\n");
}

}  // namespace
}  // namespace flos
