// Tests for the comparison methods (paper Table 5): exact baselines must
// match ground truth; approximate baselines must behave sanely and are
// measured, not asserted, for recall.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/castanet.h"
#include "baselines/dne.h"
#include "baselines/ge_embed.h"
#include "baselines/gi.h"
#include "baselines/kdash.h"
#include "baselines/ls_push.h"
#include "baselines/ls_tht.h"
#include "baselines/nn_ei.h"
#include "graph/accessor.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ExpectTopKMatchesScores;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

double Recall(const std::vector<NodeId>& got,
              const std::vector<NodeId>& truth) {
  if (truth.empty()) return 1.0;
  int hits = 0;
  for (const NodeId t : truth) {
    hits += std::count(got.begin(), got.end(), t) > 0;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

TEST(GiTest, ExactForEveryMeasure) {
  const Graph g = RandomConnectedGraph(200, 600, 3);
  const NodeId q = 17;
  const int k = 10;
  for (const Measure m : {Measure::kPhp, Measure::kEi, Measure::kDht,
                          Measure::kTht, Measure::kRwr}) {
    GiOptions options;
    options.measure = m;
    options.tolerance = 1e-10;
    const TopKAnswer answer = ValueOrDie(GiTopK(g, q, k, options));
    EXPECT_TRUE(answer.exact);
    ASSERT_EQ(answer.nodes.size(), static_cast<size_t>(k));
    const auto exact = ValueOrDie(ExactMeasure(g, q, m, options.params));
    ExpectTopKMatchesScores(answer.nodes, exact, q, k, MeasureDirection(m));
  }
}

TEST(NnEiTest, ExactRankingUnderEi) {
  const Graph g = RandomConnectedGraph(300, 900, 5);
  NnEiOptions options;
  options.c = 0.5;
  InMemoryAccessor accessor(&g);
  for (const NodeId q : {1u, 42u, 200u}) {
    for (const int k : {1, 5, 15}) {
      const TopKAnswer answer = ValueOrDie(NnEiTopK(&accessor, q, k, options));
      EXPECT_TRUE(answer.exact);
      const auto exact = ValueOrDie(ExactEi(g, q, 0.5));
      ExpectTopKMatchesScores(answer.nodes, exact, q, k, Direction::kMaximize);
    }
  }
}

TEST(NnEiTest, IsLocal) {
  const Graph g = RandomConnectedGraph(4000, 12000, 6);
  InMemoryAccessor accessor(&g);
  NnEiOptions options;
  const TopKAnswer answer = ValueOrDie(NnEiTopK(&accessor, 7, 10, options));
  EXPECT_LT(answer.touched_nodes, g.NumNodes() / 2)
      << "push search should not touch most of the graph";
}

TEST(CastanetTest, ExactRwrTopK) {
  const Graph g = RandomConnectedGraph(250, 750, 7);
  CastanetOptions options;
  options.c = 0.5;
  for (const NodeId q : {0u, 99u}) {
    for (const int k : {1, 8, 20}) {
      const TopKAnswer answer = ValueOrDie(CastanetTopK(g, q, k, options));
      EXPECT_TRUE(answer.exact);
      const auto exact = ValueOrDie(ExactRwr(g, q, 0.5));
      ExpectTopKMatchesScores(answer.nodes, exact, q, k, Direction::kMaximize);
    }
  }
}

TEST(CastanetTest, SmallComponent) {
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = 6;
  GraphBuilder builder(builder_options);
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));
  FLOS_ASSERT_OK(builder.AddEdge(3, 4));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const TopKAnswer answer = ValueOrDie(CastanetTopK(g, 0, 5, CastanetOptions{}));
  EXPECT_EQ(answer.nodes.size(), 2u);  // only {1,2} reachable
}

TEST(KdashTest, ExactAfterPrecomputation) {
  const Graph g = RandomConnectedGraph(150, 400, 9);
  KdashOptions options;
  options.c = 0.5;
  const KdashIndex index = ValueOrDie(KdashIndex::Build(&g, options));
  EXPECT_GT(index.fill_entries(), 0u);
  const auto exact = ValueOrDie(ExactRwr(g, 31, 0.5));
  const TopKAnswer answer = ValueOrDie(index.Query(31, 12));
  EXPECT_TRUE(answer.exact);
  ExpectTopKMatchesScores(answer.nodes, exact, 31, 12, Direction::kMaximize);
  // Scores are the actual RWR values.
  for (size_t i = 0; i < answer.nodes.size(); ++i) {
    EXPECT_NEAR(answer.scores[i], exact[answer.nodes[i]], 1e-8);
  }
}

TEST(KdashTest, FillBudgetMakesBuildFailGracefully) {
  const Graph g = RandomConnectedGraph(200, 1200, 10);
  KdashOptions options;
  options.max_fill_entries = 50;
  const auto result = KdashIndex::Build(&g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(DneTest, GoodRecallWithGenerousBudgetAndCappedVisits) {
  const Graph g = RandomConnectedGraph(500, 1500, 11);
  InMemoryAccessor accessor(&g);
  DneOptions options;
  options.node_budget = 400;
  const NodeId q = 13;
  const int k = 10;
  const TopKAnswer answer = ValueOrDie(DneTopK(&accessor, q, k, options));
  EXPECT_FALSE(answer.exact);
  EXPECT_LE(answer.touched_nodes,
            static_cast<double>(options.node_budget) + g.MaxWeightedDegree());
  const auto exact = ValueOrDie(ExactPhp(g, q, 0.5));
  const auto truth = TopKFromScores(exact, q, k, Direction::kMaximize);
  EXPECT_GE(Recall(answer.nodes, truth), 0.7)
      << "DNE with a large budget should find most of the true top-k";
}

TEST(LsPushTest, ClusersCoverGraphAndQueriesAreLocal) {
  const Graph g = RandomConnectedGraph(600, 1800, 12);
  LsPushOptions options;
  options.cluster_size = 100;
  const LsPushIndex index = ValueOrDie(LsPushIndex::Build(&g, options));
  EXPECT_GE(index.num_clusters(), 6u);
  MeasureParams params;
  const TopKAnswer answer =
      ValueOrDie(index.Query(44, 10, Measure::kRwr, params));
  EXPECT_FALSE(answer.exact);
  EXPECT_LE(answer.touched_nodes, options.cluster_size);
  EXPECT_EQ(answer.nodes.size(), 10u);
  // Recall is typically decent because close nodes cluster together.
  const auto exact = ValueOrDie(ExactRwr(g, 44, 0.5));
  const auto truth = TopKFromScores(exact, 44, 10, Direction::kMaximize);
  EXPECT_GE(Recall(answer.nodes, truth), 0.3);
}

TEST(GeTest, NystromReconstructsLandmarkQueriesWell) {
  // For a query that IS a landmark, the Nystrom reconstruction reproduces
  // that landmark's kernel row (up to the ridge), so recall should be high.
  const Graph g = RandomConnectedGraph(400, 1600, 13);
  GeOptions options;
  options.num_landmarks = 12;
  const GeEmbedding ge = ValueOrDie(GeEmbedding::Build(&g, options));
  EXPECT_EQ(ge.num_landmarks(), 12u);
  const NodeId q = g.DegreeOrder()[0];  // the first landmark
  const TopKAnswer answer = ValueOrDie(ge.Query(q, 10));
  EXPECT_FALSE(answer.exact);
  const auto exact = ValueOrDie(ExactRwr(g, q, 0.5));
  const auto truth = TopKFromScores(exact, q, 10, Direction::kMaximize);
  EXPECT_GE(Recall(answer.nodes, truth), 0.8);
}

TEST(GeTest, ArbitraryQueriesGetApproximateAnswers) {
  const Graph g = RandomConnectedGraph(400, 1600, 13);
  GeOptions options;
  options.num_landmarks = 12;
  const GeEmbedding ge = ValueOrDie(GeEmbedding::Build(&g, options));
  const TopKAnswer answer = ValueOrDie(ge.Query(77, 10));
  EXPECT_FALSE(answer.exact);
  EXPECT_EQ(answer.nodes.size(), 10u);
  // Scores come out ranked.
  for (size_t i = 1; i < answer.scores.size(); ++i) {
    EXPECT_GE(answer.scores[i - 1], answer.scores[i]);
  }
}

TEST(LsThtTest, FindsNearNeighborsApproximately) {
  const Graph g = RandomConnectedGraph(500, 1500, 14);
  InMemoryAccessor accessor(&g);
  LsThtOptions options;
  options.length = 10;
  options.node_budget = 450;
  const NodeId q = 21;
  const int k = 10;
  const TopKAnswer answer = ValueOrDie(LsThtTopK(&accessor, q, k, options));
  EXPECT_FALSE(answer.exact);
  const auto exact = ValueOrDie(ExactTht(g, q, options.length));
  const auto truth = TopKFromScores(exact, q, k, Direction::kMinimize);
  EXPECT_GE(Recall(answer.nodes, truth), 0.6);
}

TEST(BaselinesTest, RejectBadArguments) {
  const Graph g = RandomConnectedGraph(50, 100, 15);
  InMemoryAccessor accessor(&g);
  EXPECT_FALSE(GiTopK(g, 99, 5, GiOptions{}).ok());
  EXPECT_FALSE(DneTopK(&accessor, 0, 0, DneOptions{}).ok());
  EXPECT_FALSE(NnEiTopK(&accessor, 99, 5, NnEiOptions{}).ok());
  EXPECT_FALSE(CastanetTopK(g, 0, 0, CastanetOptions{}).ok());
  EXPECT_FALSE(LsThtTopK(&accessor, 0, 5, LsThtOptions{.length = 0}).ok());
  LsPushOptions bad_cluster;
  bad_cluster.cluster_size = 1;
  EXPECT_FALSE(LsPushIndex::Build(&g, bad_cluster).ok());
}

}  // namespace
}  // namespace flos
