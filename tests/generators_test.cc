// Tests for the synthetic graph generators (Erdős–Rényi, R-MAT, connected).

#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/traversal.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ValueOrDie;

class GeneratorInvariantsTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(GeneratorInvariantsTest, ExactCountsNoLoopsNoDuplicates) {
  const auto [which, seed] = GetParam();
  GeneratorOptions options;
  options.num_nodes = 500;
  options.num_edges = 2000;
  options.seed = seed;
  const Graph g = ValueOrDie(which == 0   ? GenerateErdosRenyi(options)
                             : which == 1 ? GenerateRmat(options)
                                          : GenerateConnected(options));
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_EQ(g.NumEdges(), 2000u);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    const auto ids = g.NeighborIds(u);
    for (size_t e = 0; e < ids.size(); ++e) {
      EXPECT_NE(ids[e], u) << "self loop at " << u;
      if (e > 0) {
        EXPECT_LT(ids[e - 1], ids[e]) << "duplicate edge at " << u;
      }
      // Symmetry.
      EXPECT_TRUE(g.HasEdge(ids[e], u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorInvariantsTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1u, 7u, 42u)));

TEST(GeneratorsTest, Deterministic) {
  GeneratorOptions options;
  options.num_nodes = 200;
  options.num_edges = 600;
  options.seed = 5;
  const Graph a = ValueOrDie(GenerateRmat(options));
  const Graph b = ValueOrDie(GenerateRmat(options));
  ASSERT_EQ(a.neighbors().size(), b.neighbors().size());
  EXPECT_EQ(a.neighbors(), b.neighbors());
}

TEST(GeneratorsTest, RmatIsMoreSkewedThanEr) {
  GeneratorOptions options;
  options.num_nodes = 2000;
  options.num_edges = 10000;
  options.seed = 3;
  const Graph er = ValueOrDie(GenerateErdosRenyi(options));
  RmatParams skewed;  // defaults a=0.45 already skewed
  const Graph rmat = ValueOrDie(GenerateRmat(options, skewed));
  const auto max_degree = [](const Graph& g) {
    uint32_t best = 0;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      best = std::max(best, g.Degree(u));
    }
    return best;
  };
  EXPECT_GT(max_degree(rmat), max_degree(er))
      << "R-MAT should produce hub nodes";
}

TEST(GeneratorsTest, ConnectedGraphIsConnected) {
  GeneratorOptions options;
  options.num_nodes = 300;
  options.num_edges = 400;
  options.seed = 9;
  const Graph g = ValueOrDie(GenerateConnected(options));
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

TEST(GeneratorsTest, RandomWeightsArePositive) {
  GeneratorOptions options;
  options.num_nodes = 100;
  options.num_edges = 300;
  options.random_weights = true;
  const Graph g = ValueOrDie(GenerateErdosRenyi(options));
  for (const double w : g.weights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(GeneratorsTest, WattsStrogatzInvariants) {
  GeneratorOptions options;
  options.num_nodes = 1000;
  options.seed = 4;
  const Graph g =
      ValueOrDie(GenerateWattsStrogatz(options, /*lattice_degree=*/6,
                                       /*rewire_beta=*/0.1));
  // Edge count is ~ n * k / 2 (rewiring can collide and drop a few).
  EXPECT_GT(g.NumEdges(), 1000u * 3 * 9 / 10);
  EXPECT_LE(g.NumEdges(), 1000u * 3);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (const NodeId v : g.NeighborIds(u)) EXPECT_NE(u, v);
  }
  // beta = 0: a pure ring lattice, fully deterministic.
  const Graph ring = ValueOrDie(GenerateWattsStrogatz(options, 4, 0.0));
  EXPECT_EQ(ring.NumEdges(), 2000u);
  EXPECT_TRUE(ring.HasEdge(0, 1));
  EXPECT_TRUE(ring.HasEdge(0, 2));
  EXPECT_TRUE(ring.HasEdge(0, 999));
  EXPECT_FALSE(ring.HasEdge(0, 3));
}

TEST(GeneratorsTest, WattsStrogatzRejectsBadParameters) {
  GeneratorOptions options;
  options.num_nodes = 100;
  EXPECT_FALSE(GenerateWattsStrogatz(options, 3, 0.1).ok());   // odd degree
  EXPECT_FALSE(GenerateWattsStrogatz(options, 0, 0.1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(options, 4, 1.5).ok());   // bad beta
  options.num_nodes = 2;
  EXPECT_FALSE(GenerateWattsStrogatz(options, 2, 0.1).ok());
}

TEST(GeneratorsTest, RejectsBadOptions) {
  GeneratorOptions options;
  options.num_nodes = 1;  // too few
  options.num_edges = 0;
  EXPECT_FALSE(GenerateErdosRenyi(options).ok());
  options.num_nodes = 10;
  options.num_edges = 40;  // > half of all pairs (45/2)
  EXPECT_FALSE(GenerateErdosRenyi(options).ok());
  options.num_edges = 5;   // < n-1
  EXPECT_FALSE(GenerateConnected(options).ok());
  options.num_edges = 20;
  RmatParams bad;
  bad.a = 0.9;  // probabilities no longer sum to 1
  EXPECT_FALSE(GenerateRmat(options, bad).ok());
}

}  // namespace
}  // namespace flos
