// Tests for the benchmark-harness helpers (bench/harness.h): these drive
// every figure reproduction, so their parsing, sampling, and sweep
// construction deserve the same coverage as the library.

#include "bench/harness.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ValueOrDie;

TEST(HarnessTest, ParseIntList) {
  const std::vector<int> one = bench::ParseIntList("20");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 20);
  const std::vector<int> many = bench::ParseIntList("1,10,20,40");
  ASSERT_EQ(many.size(), 4u);
  EXPECT_EQ(many[3], 40);
}

TEST(HarnessTest, SampleQueriesSkipsIsolatedNodes) {
  GraphBuilder::Options options;
  options.num_nodes = 100;  // nodes 50..99 stay isolated
  GraphBuilder builder(options);
  for (NodeId u = 0; u + 1 < 50; ++u) {
    FLOS_ASSERT_OK(builder.AddEdge(u, u + 1));
  }
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::vector<NodeId> queries = bench::SampleQueries(g, 30, 7);
  EXPECT_EQ(queries.size(), 30u);
  for (const NodeId q : queries) {
    EXPECT_GT(g.Degree(q), 0u) << "sampled isolated node " << q;
  }
  // Deterministic given the seed.
  EXPECT_EQ(queries, bench::SampleQueries(g, 30, 7));
  EXPECT_NE(queries, bench::SampleQueries(g, 30, 8));
}

TEST(HarnessTest, RecallCountsIntersection) {
  EXPECT_DOUBLE_EQ(bench::Recall({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(bench::Recall({1, 2, 9}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(bench::Recall({}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(bench::Recall({5}, {}), 1.0);  // empty truth: vacuous
}

TEST(HarnessTest, SizeSweepDoublesNodesAtFixedDensity) {
  const auto specs = bench::SizeSweep(1000, 10.0, /*rmat=*/false);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].nodes, 1000u);
  EXPECT_EQ(specs[3].nodes, 8000u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.edges, s.nodes * 5);  // density 10 = 2|E|/|V|
    EXPECT_FALSE(s.rmat);
    EXPECT_NE(s.label.find("RAND"), std::string::npos);
  }
}

TEST(HarnessTest, DensitySweepFixesNodes) {
  const auto specs = bench::DensitySweep(2000, {4.8, 9.5}, /*rmat=*/true);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].nodes, 2000u);
  EXPECT_EQ(specs[0].edges, 4800u);
  EXPECT_EQ(specs[1].edges, 9500u);
  EXPECT_TRUE(specs[0].rmat);
}

TEST(HarnessTest, BuildSynthHonorsSpec) {
  bench::SynthSpec spec;
  spec.nodes = 500;
  spec.edges = 2000;
  spec.rmat = true;
  const Graph g = ValueOrDie(bench::BuildSynth(spec, 3));
  EXPECT_EQ(g.NumNodes(), 500u);
  EXPECT_EQ(g.NumEdges(), 2000u);
}

TEST(HarnessTest, TimeQueriesAggregates) {
  int calls = 0;
  const bench::Timing t = bench::TimeQueries(
      {1, 2, 3}, [&](NodeId) {
        ++calls;
        return true;
      });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(t.runs, 3);
  EXPECT_GE(t.max_ms, t.min_ms);
  EXPECT_NEAR(t.total_ms, t.avg_ms * 3, 1e-9);
  // Abort on false.
  const bench::Timing aborted = bench::TimeQueries(
      {1, 2, 3}, [&](NodeId q) { return q < 2; });
  EXPECT_EQ(aborted.runs, 1);
}

}  // namespace
}  // namespace flos
