// Unit tests for the CSR graph, builder semantics, and accessor.

#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/accessor.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ValueOrDie;

TEST(GraphBuilderTest, BuildsSymmetricCsr) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 2.0));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2, 3.0));
  const Graph g = ValueOrDie(std::move(builder).Build());
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.NumDirectedEdges(), 4u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 5.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.0);
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphBuilderTest, DuplicateEdgesAccumulateWeight) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 1.0));
  FLOS_ASSERT_OK(builder.AddEdge(1, 0, 2.5));
  const Graph g = ValueOrDie(std::move(builder).Build());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 3.5);
}

TEST(GraphBuilderTest, RejectsSelfLoopsAndBadWeights) {
  GraphBuilder builder;
  EXPECT_FALSE(builder.AddEdge(3, 3).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(builder.AddEdge(0, 1, -1.0).ok());
}

TEST(GraphBuilderTest, IgnoreSelfLoopOption) {
  GraphBuilder::Options options;
  options.ignore_self_loops = true;
  GraphBuilder builder(options);
  FLOS_ASSERT_OK(builder.AddEdge(2, 2));
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  const Graph g = ValueOrDie(std::move(builder).Build());
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphBuilderTest, FixedNodeCount) {
  GraphBuilder::Options options;
  options.num_nodes = 10;
  GraphBuilder builder(options);
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 10).ok());
  const Graph g = ValueOrDie(std::move(builder).Build());
  EXPECT_EQ(g.NumNodes(), 10u);
  EXPECT_EQ(g.Degree(9), 0u);
}

TEST(GraphBuilderTest, EmptyBuilderYieldsEmptyGraph) {
  GraphBuilder builder;
  const Graph g = ValueOrDie(std::move(builder).Build());
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.MaxWeightedDegree(), 0.0);
}

TEST(GraphTest, NeighborListsAreSorted) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(5, 2));
  FLOS_ASSERT_OK(builder.AddEdge(5, 9));
  FLOS_ASSERT_OK(builder.AddEdge(5, 1));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const auto ids = g.NeighborIds(5);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 9u);
}

TEST(GraphTest, DegreeOrderIsDescending) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  FLOS_ASSERT_OK(builder.AddEdge(0, 2));
  FLOS_ASSERT_OK(builder.AddEdge(0, 3));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const auto& order = g.DegreeOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);  // degree 3
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.WeightedDegree(order[i - 1]), g.WeightedDegree(order[i]));
  }
  EXPECT_DOUBLE_EQ(g.MaxWeightedDegree(), 3.0);
}

TEST(GraphFromCsrPartsTest, AcceptsValidAndRejectsCorrupt) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 2.0));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2, 1.0));
  const Graph g = ValueOrDie(std::move(builder).Build());
  // Round-trip through raw parts.
  const Graph g2 = ValueOrDie(
      GraphFromCsrParts(g.offsets(), g.neighbors(), g.weights()));
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(g2.EdgeWeight(0, 1), 2.0);

  // Asymmetric: 0->1 without 1->0.
  EXPECT_FALSE(GraphFromCsrParts({0, 1, 1}, {1}, {1.0}).ok());
  // Out-of-range neighbor.
  EXPECT_FALSE(GraphFromCsrParts({0, 1, 2}, {5, 0}, {1.0, 1.0}).ok());
  // Non-positive weight.
  EXPECT_FALSE(GraphFromCsrParts({0, 1, 2}, {1, 0}, {0.0, 0.0}).ok());
  // Unsorted neighbors.
  EXPECT_FALSE(
      GraphFromCsrParts({0, 2, 3, 5}, {2, 1, 0, 0, 1}, {1, 1, 1, 1, 1}).ok());
}

TEST(InMemoryAccessorTest, MatchesGraphAndCountsStats) {
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1, 2.0));
  FLOS_ASSERT_OK(builder.AddEdge(0, 2, 1.0));
  const Graph g = ValueOrDie(std::move(builder).Build());
  InMemoryAccessor accessor(&g);
  EXPECT_EQ(accessor.NumNodes(), 3u);
  EXPECT_EQ(accessor.NumEdges(), 2u);
  std::vector<Neighbor> nbs;
  FLOS_ASSERT_OK(accessor.CopyNeighbors(0, &nbs));
  ASSERT_EQ(nbs.size(), 2u);
  EXPECT_EQ(nbs[0].id, 1u);
  EXPECT_DOUBLE_EQ(nbs[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(accessor.WeightedDegree(0), 3.0);
  EXPECT_EQ(accessor.stats().neighbor_fetches, 1u);
  EXPECT_EQ(accessor.stats().degree_probes, 1u);
  EXPECT_FALSE(accessor.CopyNeighbors(99, &nbs).ok());
  accessor.ResetStats();
  EXPECT_EQ(accessor.stats().neighbor_fetches, 0u);
}

}  // namespace
}  // namespace flos
