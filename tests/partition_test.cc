// Halo-replicated partitioning: coverage/ring invariants, global-degree
// sidecars, file round trips, the route table's validation, and the
// ShardAccessor contract (full-graph degrees, truncated-adjacency
// reporting) that keeps FLoS bounds sound on shard-local graphs.

#include "graph/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

Graph TestGraph(uint64_t nodes = 1500, uint64_t seed = 11) {
  GeneratorOptions options;
  options.num_nodes = nodes;
  options.num_edges = nodes * 6;
  options.seed = seed;
  return ValueOrDie(GenerateConnected(options));
}

/// Full-graph adjacency of `global` as a sorted (neighbor, weight) list.
std::vector<std::pair<NodeId, double>> FullAdjacency(const Graph& graph,
                                                     NodeId global) {
  InMemoryAccessor accessor(&graph);
  std::vector<Neighbor> neighbors;
  EXPECT_TRUE(accessor.CopyNeighbors(global, &neighbors).ok());
  std::vector<std::pair<NodeId, double>> out;
  for (const Neighbor& nb : neighbors) out.emplace_back(nb.id, nb.weight);
  std::sort(out.begin(), out.end());
  return out;
}

/// Shard-local adjacency of local node `local`, translated to global ids.
std::vector<std::pair<NodeId, double>> ShardAdjacency(const ShardPart& shard,
                                                      NodeId local) {
  ShardAccessor accessor(&shard.graph, &shard.meta);
  std::vector<Neighbor> neighbors;
  EXPECT_TRUE(accessor.CopyNeighbors(local, &neighbors).ok());
  std::vector<std::pair<NodeId, double>> out;
  for (const Neighbor& nb : neighbors) {
    out.emplace_back(shard.meta.local_to_global[nb.id], nb.weight);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class PartitionTest : public ::testing::TestWithParam<PartitionMethod> {};

TEST_P(PartitionTest, CoreCoversEveryNodeExactlyOnce) {
  const Graph graph = TestGraph();
  PartitionOptions options;
  options.num_shards = 4;
  options.method = GetParam();
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));
  ASSERT_EQ(partition.shards.size(), 4u);
  ASSERT_EQ(partition.owner.size(), graph.NumNodes());

  std::vector<uint32_t> owned(graph.NumNodes(), 0);
  for (const ShardPart& shard : partition.shards) {
    const ShardMeta& meta = shard.meta;
    EXPECT_EQ(meta.global_nodes, graph.NumNodes());
    EXPECT_GT(meta.num_core, 0u);
    EXPECT_LE(meta.num_core, meta.num_interior);
    EXPECT_LE(meta.num_interior, meta.num_local());
    EXPECT_EQ(static_cast<uint64_t>(shard.graph.NumNodes()),
              static_cast<uint64_t>(meta.num_local()));
    for (NodeId local = 0; local < meta.num_core; ++local) {
      const NodeId global = meta.local_to_global[local];
      EXPECT_EQ(partition.owner[global], meta.shard_index);
      ++owned[global];
    }
  }
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_EQ(owned[v], 1u) << "node " << v;
  }
}

TEST_P(PartitionTest, InteriorRowsAreCompleteFringeRowsAreSubsets) {
  const Graph graph = TestGraph(800);
  PartitionOptions options;
  options.num_shards = 3;
  options.method = GetParam();
  options.halo_hops = 2;
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));

  for (const ShardPart& shard : partition.shards) {
    const ShardMeta& meta = shard.meta;
    for (NodeId local = 0; local < meta.num_local(); ++local) {
      const NodeId global = meta.local_to_global[local];
      const auto full = FullAdjacency(graph, global);
      const auto seen = ShardAdjacency(shard, local);
      if (local < meta.num_interior) {
        EXPECT_EQ(seen, full) << "interior row truncated: shard "
                              << meta.shard_index << " node " << global;
      } else {
        // Fringe: every stored edge exists in the full graph; the full
        // list may have more.
        EXPECT_LE(seen.size(), full.size());
        EXPECT_TRUE(std::includes(full.begin(), full.end(), seen.begin(),
                                  seen.end()))
            << "fringe row has an edge missing from the graph: shard "
            << meta.shard_index << " node " << global;
      }
      // The sidecar records FULL degrees for every local node.
      EXPECT_DOUBLE_EQ(meta.global_degree[local],
                       graph.WeightedDegree(global));
    }
  }
}

TEST_P(PartitionTest, ShardAccessorServesGlobalDegreeInformation) {
  const Graph graph = TestGraph(600);
  PartitionOptions options;
  options.num_shards = 2;
  options.method = GetParam();
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));
  const ShardPart& shard = partition.shards[0];
  const ShardMeta& meta = shard.meta;
  ShardAccessor accessor(&shard.graph, &meta);

  std::set<NodeId> replicated(meta.local_to_global.begin(),
                              meta.local_to_global.end());
  double off_shard_max = 0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    if (replicated.count(v) == 0) {
      off_shard_max = std::max(off_shard_max, graph.WeightedDegree(v));
    }
  }
  EXPECT_DOUBLE_EQ(accessor.ExternalDegreeBound(), off_shard_max);

  for (NodeId local = 0; local < meta.num_local(); ++local) {
    EXPECT_DOUBLE_EQ(accessor.WeightedDegree(local),
                     graph.WeightedDegree(meta.local_to_global[local]));
    EXPECT_EQ(accessor.CompleteAdjacency(local), local < meta.num_interior);
  }
}

TEST_P(PartitionTest, ShardFilesRoundTrip) {
  const Graph graph = TestGraph(500);
  PartitionOptions options;
  options.num_shards = 2;
  options.method = GetParam();
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("flos_partition_test_" +
        std::string(GetParam() == PartitionMethod::kHash ? "hash" : "bfs")))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteShardFiles(partition, dir).ok());

  for (const ShardPart& shard : partition.shards) {
    const uint32_t index = shard.meta.shard_index;
    const ShardMeta meta = ValueOrDie(ReadShardMap(ShardMapPath(dir, index)));
    EXPECT_EQ(meta.shard_index, index);
    EXPECT_EQ(meta.num_shards, shard.meta.num_shards);
    EXPECT_EQ(meta.halo_hops, shard.meta.halo_hops);
    EXPECT_EQ(meta.num_core, shard.meta.num_core);
    EXPECT_EQ(meta.num_interior, shard.meta.num_interior);
    EXPECT_EQ(meta.local_to_global, shard.meta.local_to_global);
    ASSERT_EQ(meta.global_degree.size(), shard.meta.global_degree.size());
    for (size_t i = 0; i < meta.global_degree.size(); ++i) {
      EXPECT_NEAR(meta.global_degree[i], shard.meta.global_degree[i],
                  1e-9 * std::max(1.0, shard.meta.global_degree[i]));
    }
    const Graph loaded =
        ValueOrDie(ReadShardGraph(ShardEdgesPath(dir, index), meta));
    EXPECT_EQ(loaded.NumNodes(), shard.graph.NumNodes());
    EXPECT_EQ(loaded.NumEdges(), shard.graph.NumEdges());
  }
  std::filesystem::remove_all(dir);
}

TEST_P(PartitionTest, RouteTableInvertsTheRemapTables) {
  const Graph graph = TestGraph(700);
  PartitionOptions options;
  options.num_shards = 3;
  options.method = GetParam();
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));

  std::vector<ShardMeta> metas;
  for (const ShardPart& shard : partition.shards) metas.push_back(shard.meta);
  const ShardRouteTable route =
      ValueOrDie(ShardRouteTable::Build(std::move(metas)));
  EXPECT_EQ(route.global_nodes(), graph.NumNodes());
  EXPECT_EQ(route.num_shards(), 3u);
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const uint32_t shard = route.ShardOf(v);
    EXPECT_EQ(shard, partition.owner[v]);
    const NodeId local = route.LocalOf(v);
    EXPECT_LT(local, partition.shards[shard].meta.num_core);
    EXPECT_EQ(partition.shards[shard].meta.local_to_global[local], v);
    EXPECT_EQ(ValueOrDie(route.ToGlobal(shard, local)), v);
  }
  // Non-core replicated ids still translate back; out-of-range ids fail.
  const ShardMeta& m0 = partition.shards[0].meta;
  if (m0.num_local() > m0.num_core) {
    EXPECT_EQ(ValueOrDie(route.ToGlobal(0, m0.num_core)),
              m0.local_to_global[m0.num_core]);
  }
  EXPECT_FALSE(route.ToGlobal(0, m0.num_local()).ok());
}

INSTANTIATE_TEST_SUITE_P(Methods, PartitionTest,
                         ::testing::Values(PartitionMethod::kBfsGrow,
                                           PartitionMethod::kHash));

TEST(PartitionValidationTest, RejectsBadOptions) {
  const Graph graph = TestGraph(50);
  PartitionOptions options;
  options.num_shards = 0;
  EXPECT_FALSE(PartitionGraph(graph, options).ok());
  options.num_shards = 2;
  options.halo_hops = 0;
  EXPECT_FALSE(PartitionGraph(graph, options).ok());
}

TEST(PartitionValidationTest, RouteTableRejectsNonPartitions) {
  const Graph graph = TestGraph(200);
  PartitionOptions options;
  options.num_shards = 2;
  const GraphPartition partition =
      ValueOrDie(PartitionGraph(graph, options));

  {
    // Duplicate ownership: the same shard twice claims its core.
    std::vector<ShardMeta> metas = {partition.shards[0].meta,
                                    partition.shards[0].meta};
    EXPECT_FALSE(ShardRouteTable::Build(std::move(metas)).ok());
  }
  {
    // Missing coverage: one shard alone leaves core nodes unowned.
    std::vector<ShardMeta> metas = {partition.shards[0].meta};
    EXPECT_FALSE(ShardRouteTable::Build(std::move(metas)).ok());
  }
}

}  // namespace
}  // namespace flos
