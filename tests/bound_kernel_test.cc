// Property tests for the fused Gauss–Seidel bound kernels
// (core/unified_bound_engine.cc over the core/sweep_kernel.h backends):
//
//  (a) the fused sweeps still produce CERTIFIED bounds
//      (lower <= exact <= upper against measures/exact);
//  (b) after the same sweep budget, the Gauss–Seidel bounds are
//      elementwise at least as tight as the pre-fusion Jacobi
//      double-buffer baseline (reimplemented here on the same LocalGraph
//      state) — monotone operators applied to already-updated values can
//      only tighten;
//  (c) the THT fused DP is bit-identical to the reference horizon
//      recursion (it stays Jacobi by necessity; only the row scan fused,
//      never handed to a reordering sweep backend).
//
// Parameterized across generator seeds and the no-local-optimum measures:
// PHP (alpha = c) and EI/DHT (alpha = 1 - c) share the PHP-form system,
// THT has its own finite-horizon engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/local_graph.h"
#include "core/unified_bound_engine.h"
#include "graph/accessor.h"
#include "measures/exact.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

// Grows S to roughly half the graph by repeatedly expanding the first
// boundary node, WITHOUT any engine attached — the dirty-node list stays
// intact, so a UnifiedBoundEngine constructed afterwards sees every node
// as dirty and computes fresh coefficients for the whole subgraph.
void GrowHalf(LocalGraph* local, uint32_t target) {
  while (local->Size() < target && !local->Exhausted()) {
    for (LocalId i = 0; i < local->Size(); ++i) {
      if (local->IsBoundary(i)) {
        ASSERT_TRUE(local->Expand(i).ok());
        break;
      }
    }
  }
}

// The pre-fusion kernel, verbatim: per-node boundary coefficients
// recomputed from the neighbor lists, then separate lower and upper
// Jacobi double-buffer sweeps with the monotone clamps. Dummy values stay
// at their initial 1.0, matching a UnifiedBoundEngine that never captured
// a boundary dummy.
struct JacobiBaseline {
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<double> self_coeff;
  std::vector<double> mesh_dummy_coeff;
  std::vector<double> plain_dummy_coeff;
  std::vector<double> scratch;
  double alpha = 0.5;
  bool self_loop = true;

  void Init(LocalGraph* local, double alpha_in, bool self_loop_in) {
    alpha = alpha_in;
    self_loop = self_loop_in;
    const uint32_t n = local->Size();
    lower.assign(n, 0.0);
    upper.assign(n, 1.0);
    for (LocalId q = 0; q < local->query_count(); ++q) {
      lower[q] = 1.0;
      upper[q] = 1.0;
    }
    self_coeff.assign(n, 0.0);
    mesh_dummy_coeff.assign(n, 0.0);
    plain_dummy_coeff.assign(n, 0.0);
    for (LocalId i = 0; i < n; ++i) {
      if (local->IsQueryLocal(i) || !local->IsBoundary(i)) continue;
      const double wi = local->WeightedDegree(i);
      if (wi <= 0) continue;
      double out_mass = 0;
      double loop_mass = 0;
      for (const Neighbor& nb : local->Neighbors(i)) {
        if (local->Contains(nb.id)) continue;
        const double p_iv = nb.weight / wi;
        out_mass += p_iv;
        if (self_loop) {
          const double wv = local->ProbeDegree(nb.id);
          if (wv > 0) loop_mass += p_iv * (nb.weight / wv);
        }
      }
      plain_dummy_coeff[i] = alpha * out_mass;
      if (self_loop) {
        self_coeff[i] = alpha * alpha * loop_mass;
        mesh_dummy_coeff[i] = alpha * alpha * (out_mass - loop_mass);
      }
    }
  }

  void SweepLower(const LocalGraph& local) {
    const uint32_t n = local.Size();
    scratch.resize(n);
    for (LocalId i = 0; i < n; ++i) {
      if (local.IsQueryLocal(i)) {
        scratch[i] = 1.0;
        continue;
      }
      const LocalRow row = local.Row(i);
      double sum = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        sum += row.weight[e] * lower[row.idx[e]];
      }
      scratch[i] = std::max(alpha * sum + self_coeff[i] * lower[i], lower[i]);
    }
    lower.swap(scratch);
  }

  void SweepUpper(const LocalGraph& local) {
    const uint32_t n = local.Size();
    scratch.resize(n);
    for (LocalId i = 0; i < n; ++i) {
      if (local.IsQueryLocal(i)) {
        scratch[i] = 1.0;
        continue;
      }
      const LocalRow row = local.Row(i);
      double sum = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        sum += row.weight[e] * upper[row.idx[e]];
      }
      double v = alpha * sum + plain_dummy_coeff[i] * /*dummy_tight=*/1.0;
      if (self_loop) {
        v = std::min(v, alpha * sum + self_coeff[i] * upper[i] +
                            mesh_dummy_coeff[i] * /*dummy_mesh=*/1.0);
      }
      scratch[i] = std::min(v, upper[i]);
    }
    upper.swap(scratch);
  }
};

struct KernelCase {
  Measure measure;
  double c;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  return std::string(MeasureName(info.param.measure)) + "_c" +
         std::to_string(static_cast<int>(info.param.c * 100)) + "_s" +
         std::to_string(info.param.seed);
}

class FusedKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(FusedKernelTest, GaussSeidelIsCertifiedAndNoLooserThanJacobi) {
  const KernelCase kase = GetParam();
  // PHP uses its decay directly; EI and DHT reduce to the PHP-form system
  // with alpha = 1 - c (Theorem 2), so their kernels are exercised by the
  // same engine at the reduced alpha.
  const double alpha =
      kase.measure == Measure::kPhp ? kase.c : 1.0 - kase.c;
  const Graph g = RandomConnectedGraph(160, 480, kase.seed);
  const NodeId q = static_cast<NodeId>(kase.seed % g.NumNodes());
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  const std::vector<double> exact = ValueOrDie(ExactPhp(g, q, alpha, tight));

  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(q));
  GrowHalf(&local, static_cast<uint32_t>(g.NumNodes() / 2));

  for (const bool self_loop : {false, true}) {
    constexpr uint32_t kBudget = 5;  // sweeps for both solvers
    UnifiedBoundOptions be;
    be.traits.alpha = alpha;
    be.self_loop_tightening = self_loop;
    be.tolerance = 0;  // never converge early: run exactly kBudget sweeps
    be.max_inner_iterations = kBudget;
    UnifiedBoundEngine engine(&local, be);
    // The engine consumes the dirty list; reuse requires regrowing, so the
    // second self_loop pass re-marks everything dirty via a fresh harness
    // below instead. First pass: dirty list is full.
    engine.OnGrowth();
    EXPECT_EQ(engine.UpdateBounds(), kBudget);

    JacobiBaseline jacobi;
    jacobi.Init(&local, alpha, self_loop);
    for (uint32_t t = 0; t < kBudget; ++t) {
      jacobi.SweepLower(local);
      jacobi.SweepUpper(local);
    }

    for (LocalId i = 0; i < local.Size(); ++i) {
      const double truth = exact[local.GlobalId(i)];
      // (a) certified on both sides.
      ASSERT_LE(engine.lower(i), truth + 1e-9)
          << "GS lower crossed exact at " << local.GlobalId(i);
      ASSERT_GE(engine.upper(i), truth - 1e-9)
          << "GS upper crossed exact at " << local.GlobalId(i);
      ASSERT_LE(jacobi.lower[i], truth + 1e-9);
      ASSERT_GE(jacobi.upper[i], truth - 1e-9);
      // (b) elementwise no looser than Jacobi after the same budget.
      ASSERT_GE(engine.lower(i), jacobi.lower[i] - 1e-12)
          << "GS lower looser than Jacobi at " << local.GlobalId(i)
          << " (self_loop=" << self_loop << ")";
      ASSERT_LE(engine.upper(i), jacobi.upper[i] + 1e-12)
          << "GS upper looser than Jacobi at " << local.GlobalId(i)
          << " (self_loop=" << self_loop << ")";
    }

    // A second engine needs a fresh dirty list: rebuild the subgraph.
    if (!self_loop) {
      local.Reset();
      FLOS_ASSERT_OK(local.Init(q));
      GrowHalf(&local, static_cast<uint32_t>(g.NumNodes() / 2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeasuresAndSeeds, FusedKernelTest,
    ::testing::Values(KernelCase{Measure::kPhp, 0.5, 1},
                      KernelCase{Measure::kPhp, 0.8, 2},
                      KernelCase{Measure::kPhp, 0.5, 3},
                      KernelCase{Measure::kEi, 0.3, 1},
                      KernelCase{Measure::kEi, 0.5, 4},
                      KernelCase{Measure::kDht, 0.4, 2},
                      KernelCase{Measure::kDht, 0.6, 5}),
    CaseName);

class ThtKernelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThtKernelTest, FusedDpMatchesReferenceAndStaysCertified) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(130, 390, seed);
  const NodeId q = static_cast<NodeId>(seed % g.NumNodes());
  const int length = 8;
  const std::vector<double> exact = ValueOrDie(ExactTht(g, q, length));

  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(q));
  GrowHalf(&local, static_cast<uint32_t>(g.NumNodes() / 2));

  UnifiedBoundOptions be;
  be.traits.family = BoundFamily::kHorizonDp;
  be.traits.horizon = length;
  UnifiedBoundEngine engine(&local, be);
  engine.UpdateBounds();

  // Reference horizon recursion: the pre-fusion DP with explicit per-node
  // out-of-S mass recomputed by scanning each row.
  const uint32_t n = local.Size();
  std::vector<double> out_mass(n, 0.0);
  for (LocalId i = 0; i < n; ++i) {
    const LocalRow row = local.Row(i);
    double in = 0;
    for (uint32_t e = 0; e < row.len; ++e) in += row.weight[e];
    out_mass[i] = std::max(0.0, 1.0 - in);
  }
  const double unvisited_hops =
      std::min<double>(length, local.UnvisitedHopLowerBound());
  std::vector<double> work_lo(n, 0.0);
  std::vector<double> work_hi(n, 0.0);
  std::vector<double> next_lo(n, 0.0);
  std::vector<double> next_hi(n, 0.0);
  for (int t = 1; t <= length; ++t) {
    const double horizon = t - 1;
    const double escaped_lo = std::min(horizon, unvisited_hops);
    for (LocalId i = 0; i < n; ++i) {
      if (local.IsQueryLocal(i)) {
        next_lo[i] = 0;
        next_hi[i] = 0;
        continue;
      }
      if (local.WeightedDegree(i) <= 0) {
        next_lo[i] = length;
        next_hi[i] = length;
        continue;
      }
      const LocalRow row = local.Row(i);
      double lo = 0;
      double hi = 0;
      for (uint32_t e = 0; e < row.len; ++e) {
        lo += row.weight[e] * work_lo[row.idx[e]];
        hi += row.weight[e] * work_hi[row.idx[e]];
      }
      next_lo[i] = 1.0 + lo + out_mass[i] * escaped_lo;
      next_hi[i] = 1.0 + hi + out_mass[i] * horizon;
    }
    work_lo.swap(next_lo);
    work_hi.swap(next_hi);
  }

  for (LocalId i = 0; i < n; ++i) {
    const double ref_lo =
        std::max(0.0, work_lo[i]);  // engine clamps vs initial bounds
    const double ref_hi = std::min(static_cast<double>(length), work_hi[i]);
    EXPECT_DOUBLE_EQ(engine.lower(i), ref_lo)
        << "fused DP lower diverged at " << local.GlobalId(i);
    EXPECT_DOUBLE_EQ(engine.upper(i), ref_hi)
        << "fused DP upper diverged at " << local.GlobalId(i);
    const double truth = exact[local.GlobalId(i)];
    ASSERT_LE(engine.lower(i), truth + 1e-9);
    ASSERT_GE(engine.upper(i), truth - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThtKernelTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(FusedKernelConvergenceTest, GaussSeidelConvergesInNoMoreSweeps) {
  // With a real tolerance, the fused GS solve must spend no more sweeps
  // than the Jacobi baseline needs, and land on bounds bracketing exact.
  const Graph g = RandomConnectedGraph(200, 600, 17);
  const NodeId q = 7;
  const double alpha = 0.5;
  const double tol = 1e-8;
  InMemoryAccessor accessor(&g);
  LocalGraph local(&accessor);
  FLOS_ASSERT_OK(local.Init(q));
  GrowHalf(&local, 100);

  UnifiedBoundOptions be;
  be.traits.alpha = alpha;
  be.tolerance = tol;
  UnifiedBoundEngine engine(&local, be);
  engine.OnGrowth();
  const uint32_t gs_sweeps = engine.UpdateBounds();

  JacobiBaseline jacobi;
  jacobi.Init(&local, alpha, /*self_loop=*/true);
  uint32_t jacobi_sweeps = 0;
  for (; jacobi_sweeps < 10000; ++jacobi_sweeps) {
    const std::vector<double> prev_lo = jacobi.lower;
    const std::vector<double> prev_hi = jacobi.upper;
    jacobi.SweepLower(local);
    jacobi.SweepUpper(local);
    double delta = 0;
    for (LocalId i = 0; i < local.Size(); ++i) {
      delta = std::max(delta, jacobi.lower[i] - prev_lo[i]);
      delta = std::max(delta, prev_hi[i] - jacobi.upper[i]);
    }
    if (delta < tol) {
      ++jacobi_sweeps;
      break;
    }
  }
  EXPECT_LE(gs_sweeps, jacobi_sweeps + 3)
      << "fused GS should converge in no more sweeps than Jacobi (+ the "
         "amortized-check stride slack)";
  EXPECT_GT(gs_sweeps, 0u);
}

}  // namespace
}  // namespace flos
