// Expansion-policy tests. FLoS bounds are rigorous for every visited set,
// so ANY schedule must terminate with the same certified top-k — the
// policies only change how many nodes the proof visits. These tests pin
// the scoring functions themselves and then verify the schedule-
// independence claim end to end against exact ground truth.

#include "core/expansion_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "measures/exact.h"
#include "measures/measure.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ExpectTopKMatchesScores;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(ExpansionPolicyTest, KindsResolveToStatelessInstances) {
  const ExpansionPolicy* best = GetExpansionPolicy(
      ExpansionPolicyKind::kBestFirst);
  const ExpansionPolicy* greedy = GetExpansionPolicy(
      ExpansionPolicyKind::kBoundGapGreedy);
  ASSERT_NE(best, nullptr);
  ASSERT_NE(greedy, nullptr);
  EXPECT_NE(best, greedy);
  EXPECT_EQ(best, GetExpansionPolicy(ExpansionPolicyKind::kBestFirst))
      << "policies are stateless singletons";
  EXPECT_STREQ(best->name(), "best_first");
  EXPECT_STREQ(greedy->name(), "bound_gap_greedy");
  EXPECT_STREQ(ExpansionPolicyKindName(ExpansionPolicyKind::kBestFirst),
               "best_first");
  EXPECT_STREQ(
      ExpansionPolicyKindName(ExpansionPolicyKind::kBoundGapGreedy),
      "bound_gap_greedy");
}

TEST(ExpansionPolicyTest, BestFirstRanksByMidpoint) {
  const ExpansionPolicy* best =
      GetExpansionPolicy(ExpansionPolicyKind::kBestFirst);
  ExpansionContext context;
  // Maximize: the higher midpoint wins.
  EXPECT_GT(best->Priority(0.4, 0.6, context),
            best->Priority(0.1, 0.3, context));
  // Minimize (THT): the lower midpoint wins.
  context.minimize = true;
  EXPECT_GT(best->Priority(0.1, 0.3, context),
            best->Priority(0.4, 0.6, context));
}

TEST(ExpansionPolicyTest, BoundGapGreedyPrefersContestedIntervals) {
  const ExpansionPolicy* greedy =
      GetExpansionPolicy(ExpansionPolicyKind::kBoundGapGreedy);
  ExpansionContext context;
  context.has_threshold = true;
  context.threshold = 0.5;
  // A wide interval straddling the threshold blocks certification; it must
  // outrank a narrow interval sitting far below it.
  EXPECT_GT(greedy->Priority(0.4, 0.7, context),
            greedy->Priority(0.05, 0.10, context));
  // Two straddling intervals: the wider one can move the proof more.
  EXPECT_GT(greedy->Priority(0.3, 0.8, context),
            greedy->Priority(0.45, 0.55, context));
  // Same width, one clear of the threshold: the contested one wins.
  EXPECT_GT(greedy->Priority(0.45, 0.55, context),
            greedy->Priority(0.05, 0.15, context));
}

// The exactness claim, per policy and per measure, against whole-graph
// ground truth: both schedules must certify and match the exact top-k.
TEST(ExpansionPolicyTest, BothPoliciesCertifyTheExactTopK) {
  const Graph graph = RandomConnectedGraph(350, 1400, 31);
  const int k = 8;
  MeasureParams params;
  for (const ExpansionPolicyKind kind :
       {ExpansionPolicyKind::kBestFirst,
        ExpansionPolicyKind::kBoundGapGreedy}) {
    for (const Measure measure :
         {Measure::kPhp, Measure::kEi, Measure::kDht, Measure::kTht,
          Measure::kRwr}) {
      FlosOptions options;
      options.measure = measure;
      options.expansion_policy = kind;
      for (const NodeId query : {NodeId{2}, NodeId{77}, NodeId{300}}) {
        const FlosResult result =
            ValueOrDie(FlosTopK(graph, query, k, options));
        ASSERT_TRUE(result.stats.exact)
            << ExpansionPolicyKindName(kind) << "/" << MeasureName(measure)
            << " failed to certify";
        const std::vector<double> exact =
            ValueOrDie(ExactMeasure(graph, query, measure, params));
        std::vector<NodeId> returned;
        for (const ScoredNode& s : result.topk) returned.push_back(s.node);
        ExpectTopKMatchesScores(returned, exact, query, k,
                                MeasureDirection(measure));
      }
    }
  }
}

// The policies genuinely differ: on a straightforward search they should
// not expand identical node counts every time (a regression where both
// kinds silently share one scoring function would pass every exactness
// test above). Visited-count equality on EVERY query would be suspicious;
// we only require one difference across a handful of queries.
TEST(ExpansionPolicyTest, PoliciesProduceDifferentSchedules) {
  const Graph graph = RandomConnectedGraph(400, 1600, 37);
  bool any_difference = false;
  for (const NodeId query : {NodeId{1}, NodeId{50}, NodeId{123},
                             NodeId{222}, NodeId{333}}) {
    FlosOptions options;
    options.measure = Measure::kPhp;
    options.expansion_policy = ExpansionPolicyKind::kBestFirst;
    const FlosResult best = ValueOrDie(FlosTopK(graph, query, 5, options));
    options.expansion_policy = ExpansionPolicyKind::kBoundGapGreedy;
    const FlosResult greedy = ValueOrDie(FlosTopK(graph, query, 5, options));
    if (best.stats.visited_nodes != greedy.stats.visited_nodes) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference)
      << "the two policies visited identical node counts on every query";
}

}  // namespace
}  // namespace flos
