// Tests for multi-source (query-set) FLoS: the queries act as one
// absorbing set; results are verified against dense ground truth of the
// multi-source systems.

#include <gtest/gtest.h>

#include <vector>

#include "core/flos.h"
#include "linalg/dense_matrix.h"
#include "linalg/lu.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

// Dense ground truth for multi-source PHP: r = c T r + e with the rows of
// every query zeroed and e = 1 on the query set.
std::vector<double> MultiSourcePhp(const Graph& g,
                                   const std::vector<NodeId>& queries,
                                   double c) {
  const auto n = static_cast<uint32_t>(g.NumNodes());
  std::vector<bool> is_query(n, false);
  for (const NodeId q : queries) is_query[q] = true;
  DenseMatrix m(n, n);
  std::vector<double> e(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    if (is_query[i]) {
      e[i] = 1.0;
      continue;
    }
    const auto ids = g.NeighborIds(i);
    const auto ws = g.NeighborWeights(i);
    for (size_t idx = 0; idx < ids.size(); ++idx) {
      m.at(i, ids[idx]) = c * ws[idx] / g.WeightedDegree(i);
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      m.at(i, j) = (i == j ? 1.0 : 0.0) - m.at(i, j);
    }
  }
  const DenseLu lu = ValueOrDie(DenseLu::Factor(m));
  std::vector<double> r;
  EXPECT_TRUE(lu.Solve(e, &r).ok());
  return r;
}

// L-step multi-source THT DP: hitting time of the set.
std::vector<double> MultiSourceTht(const Graph& g,
                                   const std::vector<NodeId>& queries,
                                   int length) {
  const uint64_t n = g.NumNodes();
  std::vector<bool> is_query(n, false);
  for (const NodeId q : queries) is_query[q] = true;
  std::vector<double> r(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (int t = 0; t < length; ++t) {
    for (uint64_t i = 0; i < n; ++i) {
      if (is_query[i]) {
        next[i] = 0;
        continue;
      }
      const auto ids = g.NeighborIds(static_cast<NodeId>(i));
      const auto ws = g.NeighborWeights(static_cast<NodeId>(i));
      double sum = 0;
      for (size_t e = 0; e < ids.size(); ++e) sum += ws[e] * r[ids[e]];
      next[i] = 1.0 + sum / g.WeightedDegree(static_cast<NodeId>(i));
    }
    r.swap(next);
  }
  return r;
}

std::vector<NodeId> TopK(const std::vector<double>& scores,
                         const std::vector<NodeId>& queries, int k,
                         Direction dir) {
  std::vector<NodeId> ids;
  for (NodeId i = 0; i < scores.size(); ++i) {
    bool is_query = false;
    for (const NodeId q : queries) is_query |= (q == i);
    if (!is_query) ids.push_back(i);
  }
  std::sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return IsCloser(dir, scores[a], scores[b]);
    return a < b;
  });
  ids.resize(std::min<size_t>(k, ids.size()));
  return ids;
}

class MultiSourceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiSourceTest, PhpMatchesDenseGroundTruth) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(200, 600, seed);
  Rng rng(seed + 50);
  std::vector<NodeId> queries;
  while (queries.size() < 3) {
    const auto q = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    bool dup = false;
    for (const NodeId existing : queries) dup |= (existing == q);
    if (!dup) queries.push_back(q);
  }
  const std::vector<double> exact = MultiSourcePhp(g, queries, 0.5);
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.tolerance = 1e-8;
  const FlosResult result = ValueOrDie(FlosTopKSet(g, queries, 10, options));
  EXPECT_TRUE(result.stats.exact);
  ASSERT_EQ(result.topk.size(), 10u);
  const auto truth = TopK(exact, queries, 10, Direction::kMaximize);
  const double kth = exact[truth.back()];
  for (const ScoredNode& s : result.topk) {
    for (const NodeId q : queries) EXPECT_NE(s.node, q);
    EXPECT_GE(exact[s.node], kth - 1e-7);
    EXPECT_LE(s.lower, exact[s.node] + 1e-7);
    EXPECT_GE(s.upper, exact[s.node] - 1e-7);
  }
}

TEST_P(MultiSourceTest, ThtMatchesDpGroundTruth) {
  const uint64_t seed = GetParam();
  const Graph g = RandomConnectedGraph(200, 600, seed + 9);
  const std::vector<NodeId> queries = {5, 60, 130};
  const int length = 8;
  const std::vector<double> exact = MultiSourceTht(g, queries, length);
  FlosOptions options;
  options.measure = Measure::kTht;
  options.tht_length = length;
  const FlosResult result = ValueOrDie(FlosTopKSet(g, queries, 8, options));
  EXPECT_TRUE(result.stats.exact);
  const auto truth = TopK(exact, queries, 8, Direction::kMinimize);
  const double kth = exact[truth.back()];
  for (const ScoredNode& s : result.topk) {
    EXPECT_LE(exact[s.node], kth + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSourceTest, ::testing::Values(1, 2, 3));

TEST(MultiSourceTest, SingleElementSetEqualsSingleQuery) {
  const Graph g = RandomConnectedGraph(150, 450, 4);
  FlosOptions options;
  options.measure = Measure::kDht;
  const FlosResult a = ValueOrDie(FlosTopK(g, 17, 6, options));
  const FlosResult b = ValueOrDie(FlosTopKSet(g, {17}, 6, options));
  ASSERT_EQ(a.topk.size(), b.topk.size());
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].node, b.topk[i].node);
    EXPECT_NEAR(a.topk[i].score, b.topk[i].score, 1e-12);
  }
}

TEST(MultiSourceTest, SearchStaysLocalAroundTheSet) {
  const Graph g = RandomConnectedGraph(5000, 15000, 6);
  FlosOptions options;
  options.measure = Measure::kPhp;
  const FlosResult result = ValueOrDie(FlosTopKSet(g, {3, 999, 4200}, 10, options));
  EXPECT_TRUE(result.stats.exact);
  EXPECT_LT(result.stats.visited_nodes, g.NumNodes() / 4);
}

TEST(MultiSourceTest, RejectsInvalidInput) {
  const Graph g = RandomConnectedGraph(50, 100, 7);
  FlosOptions options;
  EXPECT_FALSE(FlosTopKSet(g, {}, 5, options).ok());
  EXPECT_FALSE(FlosTopKSet(g, {1, 1}, 5, options).ok());  // duplicate
  EXPECT_FALSE(FlosTopKSet(g, {1, 99}, 5, options).ok());
  options.measure = Measure::kRwr;
  EXPECT_FALSE(FlosTopKSet(g, {1, 2}, 5, options).ok());
  options.measure = Measure::kEi;
  EXPECT_FALSE(FlosTopKSet(g, {1, 2}, 5, options).ok());
}

}  // namespace
}  // namespace flos
