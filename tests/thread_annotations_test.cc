// Positive coverage for the annotated locking wrappers (util/mutex.h).
//
// These tests prove the wrappers BEHAVE like the std primitives they wrap:
// mutual exclusion, TryLock semantics, condition-variable handoff under
// the mandatory while-loop wait pattern, and correct use of the annotation
// macros on a guarded struct. Runs under the TSAN CI job — TSAN checks the
// dynamic schedules here, while the clang `-Wthread-safety` CI job checks
// the static lock discipline (tests/compile_fail/ proves the analysis
// actually fires). Together they are the two halves of the concurrency
// contract in DESIGN.md.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace flos {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int64_t counter = 0;  // deliberately NOT atomic; the lock is the fence
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  // A second thread must see the mutex as busy while we hold it.
  bool contended_acquire = true;
  std::thread prober([&mu, &contended_acquire] {
    contended_acquire = mu.TryLock();
    if (contended_acquire) mu.Unlock();
  });
  prober.join();
  EXPECT_FALSE(contended_acquire);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, CondVarHandsOffThroughWhileLoopWait) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  // Unsynchronized delay to make the waiter actually block first in most
  // schedules; correctness never depends on it (hence the while loop).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(MutexTest, CondVarNotifyAllReleasesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> released{0};
  constexpr int kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(released.load(), kWaiters);
}

// A miniature of the pattern every annotated class in src/ follows: the
// capability lives next to the data it guards, accessors document their
// lock requirements, and the compile_fail/ harness proves misuse is a
// build error under clang.
class GuardedCounter {
 public:
  void Add(int64_t delta) FLOS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    value_ += delta;
  }
  int64_t Snapshot() const FLOS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }
  int64_t ValueLocked() const FLOS_REQUIRES(mu_) { return value_; }
  Mutex& mu() FLOS_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  mutable Mutex mu_;
  int64_t value_ FLOS_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, AnnotatedGuardedStructBehaves) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAdds; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Snapshot(), static_cast<int64_t>(kThreads) * kAdds);
  // REQUIRES-annotated accessor, called with the capability held.
  counter.mu().Lock();
  EXPECT_EQ(counter.ValueLocked(), static_cast<int64_t>(kThreads) * kAdds);
  counter.mu().Unlock();
}

}  // namespace
}  // namespace flos
