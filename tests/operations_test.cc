// Numerical verification of the transition-probability operations of
// Section 4 (Theorems 3, 4, 5) and the star-to-mesh transformation of
// Section 5.3 (Lemma 2), including the paper's worked examples.

#include <gtest/gtest.h>

#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/lu.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace flos {
namespace {

using testing::ValueOrDie;

// Solves the PHP-form system r = c T r + e exactly ((I - cT) r = e).
std::vector<double> SolvePhp(const DenseMatrix& t, double c,
                             const std::vector<double>& e) {
  const uint32_t n = t.rows();
  DenseMatrix a(n, n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      a.at(i, j) = (i == j ? 1.0 : 0.0) - c * t.at(i, j);
    }
  }
  const DenseLu lu = ValueOrDie(DenseLu::Factor(a));
  std::vector<double> r;
  EXPECT_TRUE(lu.Solve(e, &r).ok());
  return r;
}

// The paper's Figure 2 system: path 1-2-3 (0-based 0-1-2), q = 0.
// T has row q zeroed; p_10 = p_12 = 0.5; p_21 = 1.
DenseMatrix PaperPathT() {
  DenseMatrix t(3, 3);
  t.at(1, 0) = 0.5;
  t.at(1, 2) = 0.5;
  t.at(2, 1) = 1.0;
  return t;
}

const std::vector<double> kE = {1.0, 0.0, 0.0};

TEST(OperationsTest, PaperBaselineValues) {
  const auto r = SolvePhp(PaperPathT(), 0.5, kE);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(r[2], 1.0 / 7.0, 1e-12);
}

TEST(OperationsTest, Theorem3DeletionPaperExample) {
  // Deleting p_23 (paper: p_{2,3}) gives r' = [1, 1/4, 1/8].
  DenseMatrix t = PaperPathT();
  t.at(1, 2) = 0.0;
  const auto r = SolvePhp(t, 0.5, kE);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(r[2], 1.0 / 8.0, 1e-12);
}

TEST(OperationsTest, Theorem5DestinationChangePaperExample) {
  // Changing the destination of p_32 from node 2 to the query (node 1)
  // gives r' = [1, 3/8, 1/2].
  DenseMatrix t = PaperPathT();
  t.at(2, 1) = 0.0;
  t.at(2, 0) = 1.0;
  const auto r = SolvePhp(t, 0.5, kE);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(r[2], 1.0 / 2.0, 1e-12);
}

// Builds a random PHP-form transition system: row q zeroed, other rows are
// sub-stochastic transition rows.
DenseMatrix RandomT(uint32_t n, Rng* rng) {
  DenseMatrix t(n, n);
  for (uint32_t i = 1; i < n; ++i) {  // q = 0
    double sum = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double v = rng->NextBernoulli(0.4) ? rng->NextDouble() : 0.0;
      t.at(i, j) = v;
      sum += v;
    }
    if (sum > 0) {
      for (uint32_t j = 0; j < n; ++j) t.at(i, j) /= sum;
    }
  }
  return t;
}

class OperationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperationPropertyTest, DeletionNeverIncreasesAnyProximity) {
  Rng rng(GetParam());
  const uint32_t n = 12;
  DenseMatrix t = RandomT(n, &rng);
  std::vector<double> e(n, 0.0);
  e[0] = 1.0;
  const auto before = SolvePhp(t, 0.6, e);
  // Delete three random present transitions.
  for (int d = 0; d < 3; ++d) {
    const uint32_t i = 1 + static_cast<uint32_t>(rng.NextBounded(n - 1));
    for (uint32_t j = 0; j < n; ++j) {
      if (t.at(i, j) > 0) {
        t.at(i, j) = 0;
        break;
      }
    }
  }
  const auto after = SolvePhp(t, 0.6, e);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_LE(after[i], before[i] + 1e-12) << "node " << i;
  }
}

TEST_P(OperationPropertyTest, RestorationNeverDecreasesAnyProximity) {
  Rng rng(GetParam() + 100);
  const uint32_t n = 12;
  DenseMatrix full = RandomT(n, &rng);
  DenseMatrix pruned = full;
  // Delete some transitions, then "restore" by going back to full.
  for (uint32_t i = 1; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (pruned.at(i, j) > 0 && rng.NextBernoulli(0.3)) pruned.at(i, j) = 0;
    }
  }
  std::vector<double> e(n, 0.0);
  e[0] = 1.0;
  const auto before = SolvePhp(pruned, 0.6, e);
  const auto after = SolvePhp(full, 0.6, e);  // restoration (Theorem 4)
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_GE(after[i], before[i] - 1e-12) << "node " << i;
  }
}

TEST_P(OperationPropertyTest, DestinationChangeMovesProximityWithTarget) {
  Rng rng(GetParam() + 200);
  const uint32_t n = 12;
  const DenseMatrix t = RandomT(n, &rng);
  std::vector<double> e(n, 0.0);
  e[0] = 1.0;
  const auto base = SolvePhp(t, 0.6, e);
  // Pick a transition (i, j) and redirect to the best and worst nodes.
  for (uint32_t i = 1; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (t.at(i, j) <= 0) continue;
      uint32_t best = 0;  // query has the max proximity 1
      uint32_t worst = 0;
      for (uint32_t l = 0; l < n; ++l) {
        if (base[l] > base[best]) best = l;
        if (base[l] < base[worst]) worst = l;
      }
      // Redirecting onto the current destination would be a no-op (or a
      // deletion if coded as add-then-zero); pick a transition whose
      // endpoint is neither extreme.
      if (j == best || j == worst) continue;
      DenseMatrix up = t;
      up.at(i, best) += up.at(i, j);
      up.at(i, j) = 0;
      const auto raised = SolvePhp(up, 0.6, e);
      DenseMatrix down = t;
      down.at(i, worst) += down.at(i, j);
      down.at(i, j) = 0;
      const auto lowered = SolvePhp(down, 0.6, e);
      for (uint32_t l = 0; l < n; ++l) {
        EXPECT_GE(raised[l], base[l] - 1e-12);
        EXPECT_LE(lowered[l], base[l] + 1e-12);
      }
      return;  // one transition per seed is enough
    }
  }
}

TEST_P(OperationPropertyTest, StarToMeshPreservesRemainingProximities) {
  // Lemma 2: eliminating node u and adding p'_ij = c p_iu p_uj leaves the
  // proximities of all other nodes unchanged.
  Rng rng(GetParam() + 300);
  const uint32_t n = 10;
  const double c = 0.55;
  const DenseMatrix t = RandomT(n, &rng);
  std::vector<double> e(n, 0.0);
  e[0] = 1.0;
  const auto before = SolvePhp(t, c, e);
  const uint32_t u = 1 + static_cast<uint32_t>(rng.NextBounded(n - 1));
  // Eliminate u: for every pair (i, j), add c * p_iu * p_uj; zero u's row
  // and column. (Self-loops i == j are included, as in Definition 3.)
  DenseMatrix t2 = t;
  for (uint32_t i = 0; i < n; ++i) {
    if (i == u) continue;
    const double piu = t.at(i, u);
    if (piu <= 0) continue;
    for (uint32_t j = 0; j < n; ++j) {
      if (j == u) continue;
      t2.at(i, j) += c * piu * t.at(u, j);
    }
    t2.at(i, u) = 0;
  }
  for (uint32_t j = 0; j < n; ++j) t2.at(u, j) = 0;
  const auto after = SolvePhp(t2, c, e);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == u) continue;
    EXPECT_NEAR(after[i], before[i], 1e-10) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace flos
