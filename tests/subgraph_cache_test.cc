// Tests for the warm-subgraph cache (core/subgraph_cache.h): LRU and
// keying unit tests mirroring query_cache_test.cc, the end-to-end warm
// path (a warm resume answers exactly what a cold search answers, across
// k values and the measures sharing a fixed point), exact epoch-based
// invalidation against a mutating DynamicGraph, and the FLOS_AUDIT
// backstop that a stale-epoch snapshot is never served.

#include "core/subgraph_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/flos.h"
#include "core/flos_engine.h"
#include "core/measure_traits.h"
#include "graph/dynamic_graph.h"
#include "measures/exact.h"
#include "tests/test_util.h"
#include "util/check.h"

namespace flos {
namespace {

using testing::RandomConnectedGraph;
using testing::ValueOrDie;

SubgraphCache::Key TestKey(NodeId seed, uint64_t epoch = 0) {
  SubgraphCache::Key key;
  key.seed = seed;
  key.family = BoundFamily::kFixedPoint;
  key.alpha = 0.5;
  key.horizon = 0;
  key.epoch = epoch;
  return key;
}

std::shared_ptr<const SubgraphSnapshot> FakeSnapshot(NodeId seed) {
  auto snap = std::make_shared<SubgraphSnapshot>();
  snap->local.query = seed;
  snap->local.query_count = 1;
  snap->local.local_to_global = {seed, seed + 1};
  snap->bounds = {1.0, 1.0, 0.1, 0.4};
  return snap;
}

TEST(SubgraphCacheTest, MissThenHitReturnsStoredSnapshot) {
  SubgraphCache cache(4);
  EXPECT_EQ(cache.Lookup(TestKey(7)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.Insert(TestKey(7), FakeSnapshot(7));
  EXPECT_EQ(cache.size(), 1u);
  const auto snap = cache.Lookup(TestKey(7));
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(snap->local.query, 7u);
  EXPECT_EQ(snap->bounds.size(), 2 * snap->local.Size());
}

TEST(SubgraphCacheTest, KeyFieldsAllDiscriminate) {
  SubgraphCache cache(16);
  cache.Insert(TestKey(7), FakeSnapshot(7));
  SubgraphCache::Key other = TestKey(8);
  EXPECT_EQ(cache.Lookup(other), nullptr);
  other = TestKey(7);
  other.family = BoundFamily::kHorizonDp;
  EXPECT_EQ(cache.Lookup(other), nullptr);
  other = TestKey(7);
  other.alpha = 0.6;
  EXPECT_EQ(cache.Lookup(other), nullptr);
  other = TestKey(7);
  other.horizon = 10;
  EXPECT_EQ(cache.Lookup(other), nullptr);
  other = TestKey(7);
  other.epoch = 1;
  EXPECT_EQ(cache.Lookup(other), nullptr)
      << "a bumped epoch must never match an older snapshot";
}

TEST(SubgraphCacheTest, SharedFixedPointMeasuresShareKeys) {
  // PHP at c, EI/DHT at 1-c, and RWR at the same alpha reduce to the same
  // internal fixed point — MakeKey must collapse them to one entry, and
  // THT must key separately (horizon, not alpha). Sharing happens when the
  // resulting alphas are bit-identical; a dyadic c makes 1 - c exact so
  // the identity is testable without fp slack.
  const double c = 0.25;
  const auto php = BoundTraitsFor(Measure::kPhp, c, 12);
  const auto ei = BoundTraitsFor(Measure::kEi, 1.0 - c, 12);
  const auto dht = BoundTraitsFor(Measure::kDht, 1.0 - c, 12);
  const auto tht = BoundTraitsFor(Measure::kTht, c, 12);
  const auto k_php = SubgraphCache::MakeKey(5, php, 0);
  EXPECT_EQ(k_php, SubgraphCache::MakeKey(5, ei, 0));
  EXPECT_EQ(k_php, SubgraphCache::MakeKey(5, dht, 0));
  const auto k_tht = SubgraphCache::MakeKey(5, tht, 0);
  EXPECT_FALSE(k_php == k_tht);
  EXPECT_EQ(k_tht.alpha, 0.0) << "horizon family must not key on alpha";
  EXPECT_EQ(k_tht.horizon, 12);
}

TEST(SubgraphCacheTest, EvictsLeastRecentlyUsed) {
  SubgraphCache cache(2);
  cache.Insert(TestKey(1), FakeSnapshot(1));
  cache.Insert(TestKey(2), FakeSnapshot(2));
  ASSERT_NE(cache.Lookup(TestKey(1)), nullptr);  // freshen 1 -> 2 is LRU
  cache.Insert(TestKey(3), FakeSnapshot(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Lookup(TestKey(2)), nullptr)
      << "key 2 was least recently used and must be evicted";
  EXPECT_NE(cache.Lookup(TestKey(1)), nullptr);
  EXPECT_NE(cache.Lookup(TestKey(3)), nullptr);
}

TEST(SubgraphCacheTest, ZeroCapacityDisablesAdmission) {
  SubgraphCache cache(0);
  cache.Insert(TestKey(1), FakeSnapshot(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(TestKey(1)), nullptr);
}

TEST(SubgraphCacheTest, SnapshotSurvivesEviction) {
  // shared_ptr<const> contract: a snapshot handed to a reader stays valid
  // after the LRU drops the entry.
  SubgraphCache cache(1);
  cache.Insert(TestKey(1), FakeSnapshot(1));
  const auto held = cache.Lookup(TestKey(1));
  ASSERT_NE(held, nullptr);
  cache.Insert(TestKey(2), FakeSnapshot(2));  // evicts key 1
  EXPECT_EQ(cache.Lookup(TestKey(1)), nullptr);
  EXPECT_EQ(held->local.query, 1u) << "held snapshot must stay readable";
}

// --------------------------------------------------------------------------
// End-to-end warm path through FlosEngine.

std::vector<NodeId> SortedNodes(const FlosResult& r) {
  std::vector<NodeId> nodes;
  for (const ScoredNode& s : r.topk) nodes.push_back(s.node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

TEST(SubgraphCacheTest, WarmResumeAnswersEqualColdGroundTruth) {
  const Graph g = RandomConnectedGraph(400, 1600, 19);
  DynamicGraph dyn{g};
  SubgraphCache cache(16);
  FlosEngine engine(&dyn);
  engine.set_subgraph_cache(&cache);
  const NodeId q = 5;
  FlosOptions options;
  options.measure = Measure::kPhp;

  const FlosResult cold = ValueOrDie(engine.TopK(q, 10, options));
  ASSERT_TRUE(cold.stats.exact);
  EXPECT_FALSE(cold.stats.subgraph_hit);
  EXPECT_EQ(cache.size(), 1u) << "certified completion must deposit";

  const FlosResult warm = ValueOrDie(engine.TopK(q, 10, options));
  EXPECT_TRUE(warm.stats.subgraph_hit);
  EXPECT_FALSE(warm.stats.cache_hit)
      << "no result cache attached; the warm run recomputed the answer";
  ASSERT_TRUE(warm.stats.exact);
  EXPECT_EQ(warm.stats.expansions, 0u)
      << "a warm seed must skip the expansion phase entirely";
  EXPECT_EQ(SortedNodes(warm), SortedNodes(cold));
  const auto exact = ValueOrDie(ExactPhp(g, q, 0.5));
  for (const ScoredNode& s : warm.topk) {
    EXPECT_GE(exact[s.node], s.lower - 1e-7);
    EXPECT_LE(exact[s.node], s.upper + 1e-7);
  }
}

TEST(SubgraphCacheTest, SnapshotServesDifferentKAndSharedMeasures) {
  const Graph g = RandomConnectedGraph(400, 1600, 29);
  DynamicGraph dyn{g};
  SubgraphCache cache(16);
  FlosEngine engine(&dyn);
  engine.set_subgraph_cache(&cache);
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = 0.5;
  const FlosResult cold = ValueOrDie(engine.TopK(8, 10, options));
  ASSERT_TRUE(cold.stats.exact);
  ASSERT_EQ(cache.size(), 1u);

  // Same seed, different k: keying ignores k, so this must warm-hit.
  const FlosResult smaller_k = ValueOrDie(engine.TopK(8, 5, options));
  EXPECT_TRUE(smaller_k.stats.subgraph_hit);
  ASSERT_TRUE(smaller_k.stats.exact);

  // RWR at alpha = 1 - c solves the same fixed point; the snapshot is
  // shared even though the ranking (degree-weighted) differs.
  FlosOptions rwr = options;
  rwr.measure = Measure::kRwr;
  const FlosResult rwr_result = ValueOrDie(engine.TopK(8, 10, rwr));
  EXPECT_TRUE(rwr_result.stats.subgraph_hit);
  ASSERT_TRUE(rwr_result.stats.exact);
  const auto exact_rwr = ValueOrDie(ExactRwr(g, 8, 0.5));
  testing::ExpectTopKMatchesScores(
      [&] {
        std::vector<NodeId> nodes;
        for (const auto& s : rwr_result.topk) nodes.push_back(s.node);
        return nodes;
      }(),
      exact_rwr, 8, 10, Direction::kMaximize, 1e-6);
}

TEST(SubgraphCacheTest, EpochBumpInvalidatesExactly) {
  const Graph g = RandomConnectedGraph(300, 1200, 37);
  DynamicGraph dyn{g};
  SubgraphCache cache(16);
  FlosEngine engine(&dyn);
  engine.set_subgraph_cache(&cache);
  FlosOptions options;
  const NodeId q = 5;
  const FlosResult first = ValueOrDie(engine.TopK(q, 8, options));
  ASSERT_TRUE(first.stats.exact);

  const uint64_t epoch_before = dyn.Epoch();
  FLOS_ASSERT_OK(dyn.AddEdge(q, 250, 3.0));
  ASSERT_GT(dyn.Epoch(), epoch_before);

  const FlosResult after = ValueOrDie(engine.TopK(q, 8, options));
  EXPECT_FALSE(after.stats.subgraph_hit)
      << "a graph update must invalidate the warm snapshot";
  ASSERT_TRUE(after.stats.exact);
  const FlosResult fresh = ValueOrDie(FlosTopK(&dyn, q, 8, options));
  ASSERT_EQ(after.topk.size(), fresh.topk.size());
  for (size_t i = 0; i < fresh.topk.size(); ++i) {
    EXPECT_EQ(after.topk[i].node, fresh.topk[i].node);
    EXPECT_NEAR(after.topk[i].score, fresh.topk[i].score, 1e-12);
  }
  // The post-update run deposits under the new epoch: next query is warm.
  const FlosResult warm = ValueOrDie(engine.TopK(q, 8, options));
  EXPECT_TRUE(warm.stats.subgraph_hit);
}

TEST(SubgraphCacheTest, ClippedQueriesAreNotEligible) {
  const Graph g = RandomConnectedGraph(300, 1200, 43);
  DynamicGraph dyn{g};
  SubgraphCache cache(16);
  FlosEngine engine(&dyn);
  engine.set_subgraph_cache(&cache);
  // Snapshots must describe the full best-first expansion for their key;
  // clipped searches (visited caps, shard halo limits) may neither
  // deposit nor consume.
  FlosOptions clipped;
  clipped.max_visited = 16;
  const FlosResult capped = ValueOrDie(engine.TopK(5, 8, clipped));
  EXPECT_FALSE(capped.stats.subgraph_hit);
  EXPECT_EQ(cache.size(), 0u);
  FlosOptions limited;
  limited.expandable_limit = 64;
  (void)ValueOrDie(engine.TopK(5, 8, limited));
  EXPECT_EQ(cache.size(), 0u);
}

#if FLOS_AUDIT_ENABLED

using SubgraphCacheDeathTest = ::testing::Test;

TEST(SubgraphCacheDeathTest, ServingAStaleEpochTripsTheAudit) {
  SubgraphCache cache(4);
  cache.Insert(TestKey(7), FakeSnapshot(7));
  // Simulate the impossible: an entry whose stored epoch disagrees with
  // the key it is filed under (only corruption or an invalidation bug can
  // produce this). The audit tier must refuse to serve it.
  ASSERT_TRUE(cache.CorruptEpochForTest(TestKey(7), /*stored_epoch=*/99));
  EXPECT_DEATH(cache.Lookup(TestKey(7)),
               "subgraph cache serving a stale graph epoch");
}

#endif  // FLOS_AUDIT_ENABLED

}  // namespace
}  // namespace flos
