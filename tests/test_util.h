// Shared helpers for the test suite.

#ifndef FLOS_TESTS_TEST_UTIL_H_
#define FLOS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "measures/measure.h"
#include "util/status.h"

namespace flos {
namespace testing {

/// Gtest helper: asserts `status` is OK, printing the message otherwise.
#define FLOS_ASSERT_OK(expr)                                 \
  do {                                                       \
    const ::flos::Status flos_test_status_ = (expr);         \
    ASSERT_TRUE(flos_test_status_.ok()) << flos_test_status_.ToString(); \
  } while (0)

#define FLOS_EXPECT_OK(expr)                                 \
  do {                                                       \
    const ::flos::Status flos_test_status_ = (expr);         \
    EXPECT_TRUE(flos_test_status_.ok()) << flos_test_status_.ToString(); \
  } while (0)

/// Unwraps a Result<T> in a test, failing loudly on error.
template <typename T>
T ValueOrDie(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return T{};
  return std::move(result).value();
}

/// Builds the 8-node example graph of the paper's Figure 1(a) (unit
/// weights). Node ids are 0-based: paper node i = test node i-1.
/// Adjacency: 1:{2,3} 2:{1,4} 3:{1,4,5} 4:{2,3,6,7} 5:{3,8} 6:{4,8}
/// 7:{4,8} 8:{5,6,7} — consistent with every transition probability and
/// expansion order the paper reports (p_34=p_35=1/3, p_46=p_47=1/4,
/// Table 3's visit order).
Graph PaperExampleGraph();

/// Builds the 3-node path 1-2-3 of Figure 2 (unit weights, 0-based ids).
Graph PaperPathGraph();

/// Random connected weighted graph for property tests.
Graph RandomConnectedGraph(uint64_t nodes, uint64_t edges, uint64_t seed,
                           bool random_weights = true);

/// Exactness assertion robust to score ties: every returned node's exact
/// score must be at least as close as the exact k-th score (within `tol`).
void ExpectTopKMatchesScores(const std::vector<NodeId>& returned,
                             const std::vector<double>& exact_scores,
                             NodeId query, int k, Direction direction,
                             double tol = 1e-7);

}  // namespace testing
}  // namespace flos

#endif  // FLOS_TESTS_TEST_UTIL_H_
