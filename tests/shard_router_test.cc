// Cross-shard serving correctness, end to end and in process:
//
//  - a router over 2 or 4 shard servers answers exactly like a single
//    process holding the whole graph whenever the halo covers the visited
//    set (every measure, certified responses);
//  - when it does not, responses carry the halo-truncated flag, are never
//    certified, and their intervals still bracket the exact scores — the
//    regression guard for the truncated-fringe degree bug, checked against
//    the independent dense solver;
//  - ServiceClient's bounded connect retry backs off on kUnavailable and
//    gives up after max_attempts.

#include "service/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/flos.h"
#include "graph/generators.h"
#include "graph/partition.h"
#include "measures/exact.h"
#include "service/client.h"
#include "service/server.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

constexpr Measure kAllMeasures[] = {Measure::kPhp, Measure::kEi,
                                    Measure::kDht, Measure::kTht,
                                    Measure::kRwr};

/// Iterative solves agree across runs only to ~tau (1e-5), not machine eps.
double Slack(double a, double b) {
  return 1e-5 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

Graph TestGraph(uint64_t nodes, uint64_t seed = 7) {
  GeneratorOptions options;
  options.num_nodes = nodes;
  options.num_edges = nodes * 6;
  options.seed = seed;
  return ValueOrDie(GenerateConnected(options));
}

/// A whole loopback fleet: N shard servers plus the router in front.
class ShardFleet {
 public:
  ShardFleet(const Graph& graph, uint32_t num_shards, uint32_t halo_hops,
             PartitionMethod method) {
    PartitionOptions options;
    options.num_shards = num_shards;
    options.halo_hops = halo_hops;
    options.method = method;
    partition_ = std::make_unique<GraphPartition>(
        ValueOrDie(PartitionGraph(graph, options)));

    std::vector<ShardMeta> metas;
    ShardRouterOptions router_options;
    for (ShardPart& shard : partition_->shards) {
      ServerOptions server_options;
      server_options.num_workers = 2;
      server_options.shard_meta = &shard.meta;
      servers_.push_back(std::make_unique<ServiceServer>(&shard.graph,
                                                         server_options));
      EXPECT_TRUE(servers_.back()->Start().ok());
      router_options.shards.push_back(
          {"127.0.0.1", servers_.back()->port()});
      metas.push_back(shard.meta);
    }
    router_options.num_workers = 2;
    router_ = std::make_unique<ShardRouter>(
        ValueOrDie(ShardRouteTable::Build(std::move(metas))),
        router_options);
    EXPECT_TRUE(router_->Start().ok());
  }

  ~ShardFleet() {
    router_->Shutdown();
    for (auto& server : servers_) server->Shutdown();
  }

  ServiceClient Connect() {
    return ValueOrDie(ServiceClient::Connect("127.0.0.1", router_->port()));
  }

  const GraphPartition& partition() const { return *partition_; }

 private:
  std::unique_ptr<GraphPartition> partition_;
  std::vector<std::unique_ptr<ServiceServer>> servers_;
  std::unique_ptr<ShardRouter> router_;
};

/// Certified responses must return a correct exact top-k set (tie-robust)
/// with intervals bracketing the exact scores. Truncated responses must
/// keep rigorous intervals. Both checked against the independent dense
/// solver, not against another FLoS run.
void CheckResponse(const Graph& graph, const QueryResponse& response,
                   Measure measure, NodeId query, int k) {
  ASSERT_EQ(response.status, StatusCode::kOk)
      << MeasureName(measure) << "@" << query << ": " << response.message;
  MeasureParams params;
  const std::vector<double> exact =
      ValueOrDie(ExactMeasure(graph, query, measure, params));
  for (const ResponseEntry& entry : response.topk) {
    const double truth = exact[entry.node];
    EXPECT_LE(entry.lower, truth + Slack(entry.lower, truth))
        << MeasureName(measure) << "@" << query << " node " << entry.node;
    EXPECT_GE(entry.upper, truth - Slack(entry.upper, truth))
        << MeasureName(measure) << "@" << query << " node " << entry.node;
  }
  if (response.certified) {
    EXPECT_FALSE(response.halo_truncated)
        << MeasureName(measure) << "@" << query
        << ": certified response carries the halo-truncated flag";
    ASSERT_EQ(response.topk.size(), static_cast<size_t>(k));
    std::vector<NodeId> returned;
    for (const ResponseEntry& entry : response.topk) {
      returned.push_back(static_cast<NodeId>(entry.node));
    }
    flos::testing::ExpectTopKMatchesScores(returned, exact, query, k,
                                           MeasureDirection(measure));
  } else {
    EXPECT_TRUE(response.halo_truncated)
        << MeasureName(measure) << "@" << query
        << ": uncertified without the halo-truncated flag (no deadline)";
  }
}

void RunParity(uint32_t num_shards) {
  const Graph graph = TestGraph(800);
  // halo 30 on a small-world graph: every shard's halo BFS exhausts the
  // component, so no query can reach the fringe — all answers certify.
  ShardFleet fleet(graph, num_shards, /*halo_hops=*/30,
                   PartitionMethod::kBfsGrow);
  ServiceClient client = fleet.Connect();
  const int k = 10;
  for (const NodeId query : {NodeId{17}, NodeId{203}, NodeId{555}}) {
    for (const Measure measure : kAllMeasures) {
      QueryRequest request;
      request.measure = measure;
      request.query_node = query;
      request.k = k;
      const QueryResponse response = ValueOrDie(client.Query(request));
      EXPECT_TRUE(response.certified)
          << MeasureName(measure) << "@" << query
          << ": the halo covers the component, nothing may truncate";
      CheckResponse(graph, response, measure, query, k);

      // Same SET as the single-process run (order within the set follows
      // interval midpoints and may differ across expansion schedules).
      FlosOptions opts;
      opts.measure = measure;
      const FlosResult local = ValueOrDie(FlosTopK(graph, query, k, opts));
      ASSERT_EQ(response.topk.size(), local.topk.size());
    }
  }
}

TEST(ShardRouterTest, TwoShardCertifiedParity) { RunParity(2); }

TEST(ShardRouterTest, FourShardCertifiedParity) { RunParity(4); }

TEST(ShardRouterTest, TightHaloTruncatesWithRigorousBounds) {
  const Graph graph = TestGraph(2000);
  // Adversarial cut: hash placement scatters neighborhoods, and halo 1
  // puts the fringe one hop from every seed, so wide searches (THT
  // especially) must stop at the halo.
  ShardFleet fleet(graph, /*num_shards=*/2, /*halo_hops=*/1,
                   PartitionMethod::kHash);
  ServiceClient client = fleet.Connect();
  const int k = 10;
  uint64_t truncated = 0;
  for (const NodeId query : {NodeId{3}, NodeId{777}, NodeId{1500}}) {
    for (const Measure measure : kAllMeasures) {
      QueryRequest request;
      request.measure = measure;
      request.query_node = query;
      request.k = k;
      const QueryResponse response = ValueOrDie(client.Query(request));
      CheckResponse(graph, response, measure, query, k);
      if (!response.certified) ++truncated;
    }
  }
  EXPECT_GT(truncated, 0u)
      << "hash + halo 1 should truncate at least one wide search";
}

// Regression: a fringe node's transition probabilities must be normalized
// by its FULL degree (the shard map sidecar), not by the sum of its
// truncated edge list. The old behavior made RowInMass -> 1 on fringe
// rows, walks reflected inside the halo instead of escaping, and the THT
// upper bound certified a value strictly below the truth. In process (no
// network), checked against the independent dense solver.
TEST(ShardRouterTest, TruncatedFringeBoundsBracketDenseTruth) {
  GeneratorOptions g;
  g.num_nodes = 5000;
  g.num_edges = 40000;
  g.seed = 7;
  const Graph graph = ValueOrDie(GenerateRmat(g));
  PartitionOptions p;
  p.num_shards = 2;
  p.halo_hops = 2;
  const GraphPartition partition = ValueOrDie(PartitionGraph(graph, p));

  std::vector<ShardMeta> metas;
  for (const ShardPart& shard : partition.shards) metas.push_back(shard.meta);
  const ShardRouteTable route =
      ValueOrDie(ShardRouteTable::Build(std::move(metas)));

  uint64_t clipped = 0;
  // 3138 is the seed that exposed the original unsoundness (certified
  // 9.01712 against a true value of 9.01792).
  for (const NodeId query : {NodeId{3138}, NodeId{41}, NodeId{2222}}) {
    const uint32_t shard_index = route.ShardOf(query);
    const ShardPart& shard = partition.shards[shard_index];
    ShardAccessor accessor(&shard.graph, &shard.meta);
    for (const Measure measure : kAllMeasures) {
      FlosOptions opts;
      opts.measure = measure;
      opts.expandable_limit = shard.meta.num_interior;
      const FlosResult result =
          ValueOrDie(FlosTopK(&accessor, route.LocalOf(query), 10, opts));
      if (result.stats.frontier_clipped) {
        ++clipped;
        EXPECT_FALSE(result.stats.exact)
            << MeasureName(measure) << "@" << query;
      }
      MeasureParams params;
      const std::vector<double> exact =
          ValueOrDie(ExactMeasure(graph, query, measure, params));
      for (const ScoredNode& entry : result.topk) {
        const NodeId global = shard.meta.local_to_global[entry.node];
        const double truth = exact[global];
        EXPECT_LE(entry.lower, truth + Slack(entry.lower, truth))
            << MeasureName(measure) << "@" << query << " node " << global;
        EXPECT_GE(entry.upper, truth - Slack(entry.upper, truth))
            << MeasureName(measure) << "@" << query << " node " << global;
      }
    }
  }
  EXPECT_GT(clipped, 0u) << "halo 2 should clip at least one wide search";
}

TEST(ConnectRetryTest, BoundedRetryBacksOffThenGivesUp) {
  // Nothing listens on a fresh ephemeral-range port snatched and released
  // by the OS; connecting must retry with backoff, then surface
  // kUnavailable. 4 attempts x 30 ms initial backoff (doubling, capped)
  // floors the elapsed time at 30 + 60 + 100 ms.
  ServiceClient::ConnectRetryPolicy retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 30;
  retry.max_backoff_ms = 100;
  const auto start = std::chrono::steady_clock::now();
  const auto result = ServiceClient::Connect("127.0.0.1", 1, retry);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(result.ok());
  EXPECT_GE(elapsed.count(), 30 + 60 + 100);
}

TEST(ConnectRetryTest, ConnectsToLiveServerOnFirstAttempt) {
  const Graph graph = TestGraph(200);
  ServerOptions options;
  options.num_workers = 1;
  ServiceServer server(&graph, options);
  ASSERT_TRUE(server.Start().ok());
  ServiceClient::ConnectRetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 200;  // a retry would be visible in test time
  const auto start = std::chrono::steady_clock::now();
  ServiceClient client =
      ValueOrDie(ServiceClient::Connect("127.0.0.1", server.port(), retry));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 200);
  QueryRequest request;
  request.query_node = 5;
  request.k = 5;
  const QueryResponse response = ValueOrDie(client.Query(request));
  EXPECT_EQ(response.status, StatusCode::kOk) << response.message;
  server.Shutdown();
}

}  // namespace
}  // namespace flos
