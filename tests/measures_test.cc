// Tests for the exact measure solvers, including the paper's worked
// numbers and the agreement between iterative and dense ground truth.

#include "measures/exact.h"

#include <gtest/gtest.h>

#include "measures/measure.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::PaperPathGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

TEST(MeasureTest, DirectionsAndProperties) {
  EXPECT_EQ(MeasureDirection(Measure::kPhp), Direction::kMaximize);
  EXPECT_EQ(MeasureDirection(Measure::kEi), Direction::kMaximize);
  EXPECT_EQ(MeasureDirection(Measure::kRwr), Direction::kMaximize);
  EXPECT_EQ(MeasureDirection(Measure::kDht), Direction::kMinimize);
  EXPECT_EQ(MeasureDirection(Measure::kTht), Direction::kMinimize);
  EXPECT_TRUE(HasNoLocalOptimum(Measure::kPhp));
  EXPECT_TRUE(HasNoLocalOptimum(Measure::kEi));
  EXPECT_TRUE(HasNoLocalOptimum(Measure::kDht));
  EXPECT_TRUE(HasNoLocalOptimum(Measure::kTht));
  EXPECT_FALSE(HasNoLocalOptimum(Measure::kRwr));
  EXPECT_TRUE(IsCloser(Direction::kMaximize, 2.0, 1.0));
  EXPECT_TRUE(IsCloser(Direction::kMinimize, 1.0, 2.0));
  EXPECT_EQ(MeasureName(Measure::kTht), "THT");
}

TEST(ExactPhpTest, PaperPathGraphValues) {
  // Figure 2(a): path 1-2-3, q=1, c=0.5 -> r = [1, 2/7, 1/7].
  const Graph g = PaperPathGraph();
  const std::vector<double> r = ValueOrDie(ExactPhp(g, 0, 0.5));
  EXPECT_NEAR(r[0], 1.0, 1e-9);
  EXPECT_NEAR(r[1], 2.0 / 7.0, 1e-9);
  EXPECT_NEAR(r[2], 1.0 / 7.0, 1e-9);
}

TEST(ExactTest, IterativeMatchesDense) {
  const Graph g = RandomConnectedGraph(60, 150, 8);
  const NodeId q = 3;
  ExactSolveOptions tight;
  tight.tolerance = 1e-13;
  {
    const auto it = ValueOrDie(ExactPhp(g, q, 0.5, tight));
    const auto dn = ValueOrDie(DensePhp(g, q, 0.5));
    for (size_t i = 0; i < it.size(); ++i) EXPECT_NEAR(it[i], dn[i], 1e-9);
  }
  {
    const auto it = ValueOrDie(ExactRwr(g, q, 0.5, tight));
    const auto dn = ValueOrDie(DenseRwr(g, q, 0.5));
    for (size_t i = 0; i < it.size(); ++i) EXPECT_NEAR(it[i], dn[i], 1e-9);
  }
  {
    const auto it = ValueOrDie(ExactDht(g, q, 0.5, tight));
    const auto dn = ValueOrDie(DenseDht(g, q, 0.5));
    for (size_t i = 0; i < it.size(); ++i) EXPECT_NEAR(it[i], dn[i], 1e-8);
  }
}

TEST(ExactRwrTest, IsAProbabilityLikeVector) {
  const Graph g = RandomConnectedGraph(100, 300, 2);
  const std::vector<double> r = ValueOrDie(ExactRwr(g, 0, 0.3));
  double sum = 0;
  for (const double v : r) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);  // PPR mass sums to 1
}

TEST(ExactDhtTest, DisconnectedSaturatesAtInverseC) {
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = 5;
  GraphBuilder builder(builder_options);
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  FLOS_ASSERT_OK(builder.AddEdge(2, 3));  // unreachable pair + isolated 4
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::vector<double> r = ValueOrDie(ExactDht(g, 0, 0.5));
  EXPECT_NEAR(r[0], 0.0, 1e-9);
  EXPECT_NEAR(r[1], 1.0, 1e-9);        // one deterministic hop
  EXPECT_NEAR(r[2], 2.0, 1e-4);        // 1/c
  EXPECT_NEAR(r[3], 2.0, 1e-4);
  EXPECT_NEAR(r[4], 2.0, 1e-9);        // isolated: special-cased to 1/c
}

TEST(ExactThtTest, HandComputedValues) {
  // Path 1-2-3, q=1 (0-based 0). THT with L=3:
  // t=1: r2=1, r3=1. t=2: r2 = 1 + .5*0 + .5*1 = 1.5, r3 = 1 + r2(t1) = 2.
  // t=3: r2 = 1 + .5*r3(t2) = 2, r3 = 1 + r2(t2) = 2.5.
  const Graph g = PaperPathGraph();
  const std::vector<double> r = ValueOrDie(ExactTht(g, 0, 3));
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 2.0, 1e-12);
  EXPECT_NEAR(r[2], 2.5, 1e-12);
}

TEST(ExactThtTest, UnreachableWithinLGetsL) {
  // Path of 6 nodes, L = 3: node 5 is 5 hops away -> exactly L.
  GraphBuilder builder;
  for (int i = 0; i + 1 < 6; ++i) FLOS_ASSERT_OK(builder.AddEdge(i, i + 1));
  const Graph g = ValueOrDie(std::move(builder).Build());
  const std::vector<double> r = ValueOrDie(ExactTht(g, 0, 3));
  EXPECT_NEAR(r[5], 3.0, 1e-12);
  EXPECT_LT(r[1], 3.0);
}

TEST(ExactEiTest, IsDegreeNormalizedRwr) {
  const Graph g = RandomConnectedGraph(80, 240, 10);
  const auto rwr = ValueOrDie(ExactRwr(g, 2, 0.4));
  const auto ei = ValueOrDie(ExactEi(g, 2, 0.4));
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    EXPECT_NEAR(ei[i], rwr[i] / g.WeightedDegree(i), 1e-12);
  }
}

TEST(ExactTest, RejectsBadArguments) {
  const Graph g = PaperPathGraph();
  EXPECT_FALSE(ExactPhp(g, 99, 0.5).ok());
  EXPECT_FALSE(ExactPhp(g, 0, 0.0).ok());
  EXPECT_FALSE(ExactPhp(g, 0, 1.0).ok());
  EXPECT_FALSE(ExactTht(g, 0, 0).ok());
}

TEST(TopKFromScoresTest, RespectsDirectionAndExcludesQuery) {
  const std::vector<double> scores = {9.0, 5.0, 7.0, 1.0};
  const auto top_max = TopKFromScores(scores, 0, 2, Direction::kMaximize);
  ASSERT_EQ(top_max.size(), 2u);
  EXPECT_EQ(top_max[0], 2u);
  EXPECT_EQ(top_max[1], 1u);
  const auto top_min = TopKFromScores(scores, 3, 2, Direction::kMinimize);
  EXPECT_EQ(top_min[0], 1u);
  EXPECT_EQ(top_min[1], 2u);
  // k larger than available.
  EXPECT_EQ(TopKFromScores(scores, 0, 10, Direction::kMaximize).size(), 3u);
}

}  // namespace
}  // namespace flos
