// Headline correctness tests for FLoS: exactness of the returned top-k
// against whole-graph ground truth, across measures, graphs, k, and query
// nodes; plus behavior on the paper's worked example.

#include "core/flos.h"

#include <gtest/gtest.h>

#include <tuple>

#include "measures/exact.h"
#include "measures/measure.h"
#include "tests/test_util.h"

namespace flos {
namespace {

using testing::ExpectTopKMatchesScores;
using testing::PaperExampleGraph;
using testing::RandomConnectedGraph;
using testing::ValueOrDie;

std::vector<NodeId> NodesOf(const FlosResult& result) {
  std::vector<NodeId> out;
  for (const ScoredNode& s : result.topk) out.push_back(s.node);
  return out;
}

TEST(FlosTest, PaperExampleTop2Php) {
  // Figure 4: with q=1, c=0.8, nodes {2,3} are certified as the top-2
  // before node 8 is visited.
  const Graph g = PaperExampleGraph();
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = 0.8;
  const FlosResult result = ValueOrDie(FlosTopK(g, /*query=*/0, 2, options));
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_TRUE(result.stats.exact);
  const std::vector<NodeId> nodes = NodesOf(result);
  EXPECT_TRUE((nodes == std::vector<NodeId>{1, 2}) ||
              (nodes == std::vector<NodeId>{2, 1}))
      << nodes[0] << "," << nodes[1];
  // The paper's point: termination happens before the whole graph is seen.
  EXPECT_LT(result.stats.visited_nodes, g.NumNodes());
}

TEST(FlosTest, PaperExampleBoundsBracketExactValues) {
  const Graph g = PaperExampleGraph();
  const std::vector<double> exact = ValueOrDie(ExactPhp(g, 0, 0.8));
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = 0.8;
  const FlosResult result = ValueOrDie(FlosTopK(g, 0, 3, options));
  for (const ScoredNode& s : result.topk) {
    EXPECT_LE(s.lower, exact[s.node] + 1e-9);
    EXPECT_GE(s.upper, exact[s.node] - 1e-9);
  }
}

struct ExactnessCase {
  Measure measure;
  bool self_loop;
};

class FlosExactnessTest
    : public ::testing::TestWithParam<std::tuple<ExactnessCase, int>> {};

TEST_P(FlosExactnessTest, MatchesGroundTruthOnRandomGraphs) {
  const auto [cfg, seed] = GetParam();
  const Graph g =
      RandomConnectedGraph(/*nodes=*/300, /*edges=*/900, /*seed=*/seed * 7 + 1,
                           /*random_weights=*/true);
  MeasureParams params;
  params.c = 0.5;
  params.tht_length = 10;
  FlosOptions options;
  options.measure = cfg.measure;
  options.c = params.c;
  options.tht_length = params.tht_length;
  options.tolerance = 1e-7;
  options.self_loop_tightening = cfg.self_loop;
  const Direction dir = MeasureDirection(cfg.measure);

  Rng rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    const auto query = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    const std::vector<double> exact =
        ValueOrDie(ExactMeasure(g, query, cfg.measure, params));
    for (const int k : {1, 5, 20}) {
      const FlosResult result = ValueOrDie(FlosTopK(g, query, k, options));
      EXPECT_TRUE(result.stats.exact);
      ASSERT_EQ(result.topk.size(), static_cast<size_t>(k));
      ExpectTopKMatchesScores(NodesOf(result), exact, query, k, dir, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, FlosExactnessTest,
    ::testing::Combine(
        ::testing::Values(ExactnessCase{Measure::kPhp, true},
                          ExactnessCase{Measure::kPhp, false},
                          ExactnessCase{Measure::kEi, true},
                          ExactnessCase{Measure::kDht, true},
                          ExactnessCase{Measure::kTht, true},
                          ExactnessCase{Measure::kRwr, true},
                          ExactnessCase{Measure::kRwr, false}),
        ::testing::Range(1, 4)));

TEST(FlosTest, UnitWeightGraphWithTies) {
  // Unit weights create score ties; exactness is asserted on scores.
  const Graph g = RandomConnectedGraph(200, 500, 99, /*random_weights=*/false);
  FlosOptions options;
  options.measure = Measure::kPhp;
  options.c = 0.5;
  const std::vector<double> exact = ValueOrDie(ExactPhp(g, 5, 0.5));
  const FlosResult result = ValueOrDie(FlosTopK(g, 5, 10, options));
  ASSERT_EQ(result.topk.size(), 10u);
  ExpectTopKMatchesScores(NodesOf(result), exact, 5, 10,
                          Direction::kMaximize, 1e-6);
}

TEST(FlosTest, ScoresWithinReportedBounds) {
  const Graph g = RandomConnectedGraph(250, 700, 17);
  for (const Measure m : {Measure::kPhp, Measure::kDht, Measure::kTht}) {
    FlosOptions options;
    options.measure = m;
    options.c = 0.5;
    MeasureParams params;
    const std::vector<double> exact = ValueOrDie(ExactMeasure(g, 3, m, params));
    const FlosResult result = ValueOrDie(FlosTopK(g, 3, 8, options));
    for (const ScoredNode& s : result.topk) {
      EXPECT_LE(s.lower, exact[s.node] + 1e-6) << MeasureName(m);
      EXPECT_GE(s.upper, exact[s.node] - 1e-6) << MeasureName(m);
      EXPECT_LE(s.lower, s.upper + 1e-12);
    }
  }
}

TEST(FlosTest, RwrScoresApproximateExactValues) {
  const Graph g = RandomConnectedGraph(250, 700, 21);
  FlosOptions options;
  options.measure = Measure::kRwr;
  options.c = 0.5;
  options.tolerance = 1e-9;
  const std::vector<double> exact = ValueOrDie(ExactRwr(g, 7, 0.5));
  const FlosResult result = ValueOrDie(FlosTopK(g, 7, 5, options));
  for (const ScoredNode& s : result.topk) {
    // The reported interval is rigorous (PHP bounds x the Theorem-6 scale
    // interval), and the midpoint score approximates the exact value to
    // within the half-width.
    EXPECT_LE(s.lower, exact[s.node] + 1e-9);
    EXPECT_GE(s.upper, exact[s.node] - 1e-9);
    EXPECT_NEAR(s.score, exact[s.node],
                0.5 * (s.upper - s.lower) + 1e-9);
  }
}

TEST(FlosTest, SmallComponentReturnsEverything) {
  // Query in a 4-node component; k larger than the component.
  GraphBuilder builder;
  FLOS_ASSERT_OK(builder.AddEdge(0, 1));
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));
  FLOS_ASSERT_OK(builder.AddEdge(2, 3));
  FLOS_ASSERT_OK(builder.AddEdge(4, 5));  // separate component
  const Graph g = ValueOrDie(std::move(builder).Build());
  FlosOptions options;
  const FlosResult result = ValueOrDie(FlosTopK(g, 0, 10, options));
  EXPECT_TRUE(result.stats.exhausted_component);
  EXPECT_EQ(result.topk.size(), 3u);  // nodes 1, 2, 3
  for (const ScoredNode& s : result.topk) EXPECT_LT(s.node, 4u);
}

TEST(FlosTest, IsolatedQueryReturnsEmpty) {
  GraphBuilder::Options builder_options;
  builder_options.num_nodes = 5;
  GraphBuilder builder(builder_options);
  FLOS_ASSERT_OK(builder.AddEdge(1, 2));
  const Graph g = ValueOrDie(std::move(builder).Build());
  FlosOptions options;
  const FlosResult result = ValueOrDie(FlosTopK(g, 0, 3, options));
  EXPECT_TRUE(result.topk.empty());
  EXPECT_TRUE(result.stats.exhausted_component);
}

TEST(FlosTest, InvalidArgumentsAreRejected) {
  const Graph g = PaperExampleGraph();
  FlosOptions options;
  EXPECT_FALSE(FlosTopK(g, 0, 0, options).ok());
  EXPECT_FALSE(FlosTopK(g, 99, 2, options).ok());
  options.c = 1.5;
  EXPECT_FALSE(FlosTopK(g, 0, 2, options).ok());
  options.c = 0.5;
  options.measure = Measure::kTht;
  options.tht_length = 0;
  EXPECT_FALSE(FlosTopK(g, 0, 2, options).ok());
}

TEST(FlosTest, MaxVisitedCutoffIsRespected) {
  const Graph g = RandomConnectedGraph(500, 1500, 5);
  FlosOptions options;
  options.max_visited = 30;
  const FlosResult result = ValueOrDie(FlosTopK(g, 0, 50, options));
  // The cutoff is checked after each expansion, so allow one batch overshoot.
  EXPECT_LE(result.stats.visited_nodes, 30u + g.MaxWeightedDegree());
}

TEST(FlosTest, VisitsSmallFractionOfLargerGraph) {
  const Graph g = RandomConnectedGraph(5000, 15000, 11);
  FlosOptions options;
  options.measure = Measure::kPhp;
  const FlosResult result = ValueOrDie(FlosTopK(g, 42, 10, options));
  EXPECT_TRUE(result.stats.exact);
  EXPECT_LT(result.stats.visited_nodes, g.NumNodes() / 4)
      << "FLoS should certify locally";
}

}  // namespace
}  // namespace flos
