// Coverage for the per-node label store: interning, builder semantics,
// file IO (round trip and strict parse failures), shard projection, and
// the three synthetic generators (deterministic seeding, Zipf skew,
// multinomial proportions).

#include "graph/labels.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace flos {
namespace {

using flos::testing::ValueOrDie;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LabelTableTest, InternAssignsDenseIdsInOrder) {
  LabelTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Intern("red"), 0u);
  EXPECT_EQ(table.Intern("green"), 1u);
  EXPECT_EQ(table.Intern("red"), 0u) << "re-interning must be idempotent";
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Find("green"), 1u);
  EXPECT_EQ(table.Find("blue"), kInvalidLabel);
  EXPECT_EQ(table.Name(0), "red");
  EXPECT_EQ(table.Name(1), "green");
}

TEST(LabelStoreTest, BuilderSortsDedupsAndCounts) {
  LabelStore::Builder builder(4);
  const LabelId a = builder.table().Intern("a");
  const LabelId b = builder.table().Intern("b");
  const LabelId c = builder.table().Intern("c");
  builder.Add(0, b);
  builder.Add(0, a);
  builder.Add(0, b);  // duplicate
  builder.Add(2, c);
  // Node 1 and 3 stay label-less.
  const LabelStore store = std::move(builder).Build();

  EXPECT_EQ(store.NumNodes(), 4u);
  EXPECT_EQ(store.NumLabels(), 3u);
  EXPECT_EQ(store.NumAssignments(), 3u);
  const auto n0 = store.Labels(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], a);
  EXPECT_EQ(n0[1], b);
  EXPECT_TRUE(store.Labels(1).empty());
  ASSERT_EQ(store.Labels(2).size(), 1u);
  EXPECT_EQ(store.Labels(2)[0], c);
  EXPECT_TRUE(store.Labels(3).empty());
  EXPECT_EQ(store.LabelNodeCount(a), 1u);
  EXPECT_EQ(store.LabelNodeCount(b), 1u);
  EXPECT_EQ(store.LabelNodeCount(c), 1u);
}

TEST(LabelStoreTest, EmptyStoreIsWellFormed) {
  const LabelStore store;
  EXPECT_EQ(store.NumNodes(), 0u);
  EXPECT_EQ(store.NumLabels(), 0u);
  EXPECT_EQ(store.NumAssignments(), 0u);
}

TEST(LabelStoreTest, ProjectKeepsGlobalLabelIdsAndRecountsLocally) {
  LabelStore::Builder builder(5);
  const LabelId x = builder.table().Intern("x");
  const LabelId y = builder.table().Intern("y");
  for (NodeId v = 0; v < 5; ++v) builder.Add(v, x);
  builder.Add(4, y);
  const LabelStore store = std::move(builder).Build();

  // Shard replicates global nodes {4, 1} as local {0, 1}.
  const std::vector<NodeId> local_to_global = {4, 1};
  const LabelStore shard = store.Project(local_to_global);

  EXPECT_EQ(shard.NumNodes(), 2u);
  // The table (and therefore every LabelId) is preserved verbatim so
  // predicates built against the full graph evaluate unchanged.
  EXPECT_EQ(shard.NumLabels(), store.NumLabels());
  EXPECT_EQ(shard.table().Find("y"), y);
  ASSERT_EQ(shard.Labels(0).size(), 2u);  // global node 4: {x, y}
  EXPECT_EQ(shard.Labels(0)[0], x);
  EXPECT_EQ(shard.Labels(0)[1], y);
  ASSERT_EQ(shard.Labels(1).size(), 1u);  // global node 1: {x}
  EXPECT_EQ(shard.Labels(1)[0], x);
  // Counts are local to the projection.
  EXPECT_EQ(shard.LabelNodeCount(x), 2u);
  EXPECT_EQ(shard.LabelNodeCount(y), 1u);
}

TEST(LabelFileTest, RoundTripsThroughDisk) {
  LabelStore::Builder builder(3);
  const LabelId red = builder.table().Intern("red");
  const LabelId blue = builder.table().Intern("blue");
  builder.Add(0, red);
  builder.Add(0, blue);
  builder.Add(2, blue);
  const LabelStore store = std::move(builder).Build();

  const std::string path = TempPath("labels_roundtrip.txt");
  FLOS_ASSERT_OK(WriteLabelFile(store, path));
  const LabelStore back = ValueOrDie(ReadLabelFile(path));

  ASSERT_EQ(back.NumNodes(), store.NumNodes());
  for (NodeId v = 0; v < 3; ++v) {
    const auto a = store.Labels(v);
    const auto b = back.Labels(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(store.table().Name(a[i]), back.table().Name(b[i]))
          << "node " << v << " label " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(LabelFileTest, CommentsAndEmptyLinesParse) {
  const std::string path = TempPath("labels_comments.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header comment\nred, blue\n\n# interior comment\nred\n", f);
  std::fclose(f);

  const LabelStore store = ValueOrDie(ReadLabelFile(path, 3));
  EXPECT_EQ(store.NumNodes(), 3u);
  EXPECT_EQ(store.Labels(0).size(), 2u);
  EXPECT_TRUE(store.Labels(1).empty()) << "empty line = label-less node";
  EXPECT_EQ(store.Labels(2).size(), 1u);
  std::remove(path.c_str());
}

TEST(LabelFileTest, StrictParseFailures) {
  EXPECT_FALSE(ReadLabelFile(TempPath("no_such_label_file.txt")).ok());

  const std::string path = TempPath("labels_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("red,,blue\n", f);  // empty name between commas
  std::fclose(f);
  const auto bad = ReadLabelFile(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find(path), std::string::npos)
      << "parse errors must carry <path>:<line> context, got: "
      << bad.status().ToString();

  // Node-count mismatch against the declared graph size.
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("red\nblue\n", f);
  std::fclose(f);
  EXPECT_TRUE(ReadLabelFile(path, 2).ok());
  EXPECT_FALSE(ReadLabelFile(path, 3).ok());
  EXPECT_FALSE(ReadLabelFile(path, 1).ok());
  std::remove(path.c_str());
}

TEST(LabelGenTest, GeneratorsAreDeterministicPerSeed) {
  LabelGenOptions options;
  options.num_nodes = 500;
  options.num_labels = 16;
  options.labels_per_node = 3;
  options.seed = 99;
  const LabelStore a = ValueOrDie(GenerateZipfLabels(options));
  const LabelStore b = ValueOrDie(GenerateZipfLabels(options));
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId v = 0; v < 500; ++v) {
    const auto la = a.Labels(v);
    const auto lb = b.Labels(v);
    ASSERT_EQ(la.size(), lb.size()) << "node " << v;
    for (size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i], lb[i]) << "node " << v;
    }
  }
  // A different seed must actually change the assignment somewhere.
  options.seed = 100;
  const LabelStore c = ValueOrDie(GenerateZipfLabels(options));
  bool any_diff = false;
  for (NodeId v = 0; v < 500 && !any_diff; ++v) {
    const auto la = a.Labels(v);
    const auto lc = c.Labels(v);
    any_diff = la.size() != lc.size() ||
               !std::equal(la.begin(), la.end(), lc.begin());
  }
  EXPECT_TRUE(any_diff);
}

TEST(LabelGenTest, EveryNodeGetsExactlyTheRequestedDistinctLabels) {
  LabelGenOptions options;
  options.num_nodes = 300;
  options.num_labels = 8;
  options.labels_per_node = 3;
  options.seed = 5;
  for (const auto& generate :
       {GenerateUniformLabels, GenerateZipfLabels}) {
    const LabelStore store = ValueOrDie(generate(options));
    ASSERT_EQ(store.NumNodes(), 300u);
    EXPECT_EQ(store.NumLabels(), 8u);
    for (NodeId v = 0; v < 300; ++v) {
      const auto labels = store.Labels(v);
      ASSERT_EQ(labels.size(), 3u) << "node " << v;
      // Sorted + distinct (Build dedups; 3 distinct draws must survive).
      EXPECT_LT(labels[0], labels[1]);
      EXPECT_LT(labels[1], labels[2]);
    }
  }
}

TEST(LabelGenTest, ZipfSkewsTowardHeadLabels) {
  LabelGenOptions options;
  options.num_nodes = 20000;
  options.num_labels = 10;
  options.labels_per_node = 1;
  options.zipf_exponent = 1.0;
  options.seed = 21;
  const LabelStore store = ValueOrDie(GenerateZipfLabels(options));
  // P(label i) = (1/(i+1)) / H_10, H_10 ~ 2.929: label 0 expects ~34% of
  // nodes, label 9 ~3.4%. A 4x separation check leaves generous room for
  // sampling noise at n = 20000 (binomial sigma ~ 0.3%).
  const double head = static_cast<double>(store.LabelNodeCount(0));
  const double tail = static_cast<double>(store.LabelNodeCount(9));
  EXPECT_GT(head, 4.0 * tail)
      << "head " << head << " tail " << tail
      << ": Zipf(1.0) head/tail ratio should be ~10x";
  // And the head's share should be near its theoretical 34%.
  EXPECT_NEAR(head / 20000.0, 0.3414, 0.03);
}

TEST(LabelGenTest, MultinomialFollowsGivenWeights) {
  LabelGenOptions options;
  options.num_nodes = 20000;
  options.num_labels = 3;
  options.labels_per_node = 1;
  options.seed = 13;
  const std::vector<double> weights = {2.0, 3.0, 5.0};  // 20% / 30% / 50%
  const LabelStore store =
      ValueOrDie(GenerateMultinomialLabels(options, weights));
  EXPECT_NEAR(static_cast<double>(store.LabelNodeCount(0)) / 20000.0, 0.20,
              0.02);
  EXPECT_NEAR(static_cast<double>(store.LabelNodeCount(1)) / 20000.0, 0.30,
              0.02);
  EXPECT_NEAR(static_cast<double>(store.LabelNodeCount(2)) / 20000.0, 0.50,
              0.02);
}

TEST(LabelGenTest, MultinomialValidatesWeights) {
  LabelGenOptions options;
  options.num_nodes = 10;
  options.num_labels = 3;
  options.labels_per_node = 1;
  // Wrong arity.
  EXPECT_FALSE(
      GenerateMultinomialLabels(options, std::vector<double>{1.0}).ok());
  // Negative weight.
  EXPECT_FALSE(GenerateMultinomialLabels(
                   options, std::vector<double>{1.0, -1.0, 1.0})
                   .ok());
  // All-zero sum.
  EXPECT_FALSE(GenerateMultinomialLabels(
                   options, std::vector<double>{0.0, 0.0, 0.0})
                   .ok());
  // labels_per_node exceeding the positive-weight support.
  options.labels_per_node = 2;
  EXPECT_FALSE(GenerateMultinomialLabels(
                   options, std::vector<double>{0.0, 0.0, 1.0})
                   .ok());
}

TEST(LabelGenTest, RejectsInvalidOptions) {
  LabelGenOptions options;
  options.num_nodes = 10;
  options.num_labels = 4;
  options.labels_per_node = 5;  // > universe
  EXPECT_FALSE(GenerateUniformLabels(options).ok());
  options.labels_per_node = 0;
  EXPECT_FALSE(GenerateZipfLabels(options).ok());
}

}  // namespace
}  // namespace flos
